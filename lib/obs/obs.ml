let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let now = Unix.gettimeofday

let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* ------------------------------------------------------------------ *)
(* log-bucket geometry (DDSketch-style)

   Positive observations land in bucket [i] iff gamma^(i-1) < v <=
   gamma^i. A quantile is answered as the bucket's geometric midpoint
   2*gamma^i / (gamma+1), whose relative error is bounded by
   (gamma-1)/(gamma+1) ~= 1.96% < 2%. The index range covers
   [~1.5e-7, ~5.2e8]; values outside clamp into the end buckets
   (min/max stay exact, so clamping only ever costs quantile accuracy
   in the extreme tails). Zero and negative observations get their own
   bucket rendered with le = 0. *)

let gamma = 1.04
let inv_log_gamma = 1.0 /. Float.log gamma
let bucket_lo = -400
let bucket_hi = 511
let n_buckets = bucket_hi - bucket_lo + 1

let bucket_index v =
  (* v > 0 *)
  let i = int_of_float (Float.ceil (Float.log v *. inv_log_gamma)) in
  if i < bucket_lo then bucket_lo else if i > bucket_hi then bucket_hi else i

let bucket_le i = Float.pow gamma (float_of_int i)
let bucket_estimate i = 2.0 *. bucket_le i /. (1.0 +. gamma)

(* ------------------------------------------------------------------ *)
(* domain-sharded cells

   Every counter and histogram keeps one cell per domain that ever
   touched it; the owning domain mutates its cell with plain unshared
   writes (no CAS, no mutex, no cross-core cache-line traffic), and
   readers merge all cells lazily under the registry mutex. Racy reads
   of a live domain's cell may be slightly stale but cannot tear
   (word-sized fields); after the writing domains are joined, merged
   totals are exact. Cells live in a per-domain slab reached through
   one [Domain.DLS] lookup; slabs are recycled through a free pool
   when their domain exits, so the cell population is bounded by the
   peak number of concurrent domains, not by the number of domains
   ever spawned. *)

type ccell = { mutable cc_v : int }

type hcell = {
  mutable hc_count : int;
  mutable hc_zero : int; (* observations <= 0 *)
  hc_f : float array; (* sum; min; max — float array keeps them unboxed *)
  hc_buckets : int array; (* n_buckets *)
}

(* profile call tree, one per domain; see "spans" below *)
type pnode = {
  pf_name : string;
  mutable pf_count : int;
  pf_f : float array; (* total_s; max_s; minor_words; major_words *)
  mutable pf_compactions : int;
  pf_children : (string, pnode) Hashtbl.t;
}

let new_pnode name =
  {
    pf_name = name;
    pf_count = 0;
    pf_f = [| 0.0; 0.0; 0.0; 0.0 |];
    pf_compactions = 0;
    pf_children = Hashtbl.create 4;
  }

type slab = {
  mutable s_ccells : ccell array; (* by counter id; dummy_ccell = absent *)
  mutable s_hcells : hcell array; (* by histogram id *)
  s_proot : pnode; (* this domain's profile forest *)
  mutable s_pstack : pnode list; (* open spans, innermost first *)
}

let dummy_ccell = { cc_v = 0 }
let dummy_hcell = { hc_count = 0; hc_zero = 0; hc_f = [||]; hc_buckets = [||] }

(* all slabs ever created (active and pooled), for profile merge and
   reset; and the free pool of slabs whose domain has exited *)
let all_slabs : slab list ref = ref []
let slab_pool : slab list ref = ref []

let slab_key : slab Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s =
        locked (fun () ->
            match !slab_pool with
            | s :: rest ->
                slab_pool := rest;
                s.s_pstack <- [];
                s
            | [] ->
                let s =
                  {
                    s_ccells = [||];
                    s_hcells = [||];
                    s_proot = new_pnode "";
                    s_pstack = [];
                  }
                in
                all_slabs := s :: !all_slabs;
                s)
      in
      Domain.at_exit (fun () -> locked (fun () -> slab_pool := s :: !slab_pool));
      s)

let slab () = Domain.DLS.get slab_key

(* ------------------------------------------------------------------ *)
(* counters *)

type counter = { c_id : int; c_name : string; mutable c_cells : ccell list }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let next_counter_id = ref 0

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_id = !next_counter_id; c_name = name; c_cells = [] } in
          incr next_counter_id;
          Hashtbl.replace counters name c;
          c)

let ccell_of c =
  let s = slab () in
  let id = c.c_id in
  if id < Array.length s.s_ccells && s.s_ccells.(id) != dummy_ccell then
    s.s_ccells.(id)
  else begin
    if id >= Array.length s.s_ccells then begin
      let cap = max 8 (max (id + 1) (2 * Array.length s.s_ccells)) in
      let a = Array.make cap dummy_ccell in
      Array.blit s.s_ccells 0 a 0 (Array.length s.s_ccells);
      s.s_ccells <- a
    end;
    let cell = { cc_v = 0 } in
    s.s_ccells.(id) <- cell;
    locked (fun () -> c.c_cells <- cell :: c.c_cells);
    cell
  end

let incr c =
  if enabled () then begin
    let cell = ccell_of c in
    cell.cc_v <- cell.cc_v + 1
  end

let add c n =
  if enabled () then begin
    let cell = ccell_of c in
    cell.cc_v <- cell.cc_v + n
  end

let counter_value c =
  locked (fun () -> List.fold_left (fun acc cell -> acc + cell.cc_v) 0 c.c_cells)

(* ------------------------------------------------------------------ *)
(* gauges — last-write-wins and never hot; a single atomic suffices *)

type gauge = { g_name : string; g_value : float Atomic.t }

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          let g = { g_name = name; g_value = Atomic.make 0.0 } in
          Hashtbl.replace gauges name g;
          g)

let set_gauge g v = if enabled () then Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value

(* ------------------------------------------------------------------ *)
(* histograms *)

type histogram = { h_id : int; h_name : string; mutable h_cells : hcell list }

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let next_histogram_id = ref 0

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h = { h_id = !next_histogram_id; h_name = name; h_cells = [] } in
          next_histogram_id := !next_histogram_id + 1;
          Hashtbl.replace histograms name h;
          h)

let hcell_of h =
  let s = slab () in
  let id = h.h_id in
  if id < Array.length s.s_hcells && s.s_hcells.(id) != dummy_hcell then
    s.s_hcells.(id)
  else begin
    if id >= Array.length s.s_hcells then begin
      let cap = max 4 (max (id + 1) (2 * Array.length s.s_hcells)) in
      let a = Array.make cap dummy_hcell in
      Array.blit s.s_hcells 0 a 0 (Array.length s.s_hcells);
      s.s_hcells <- a
    end;
    let cell =
      {
        hc_count = 0;
        hc_zero = 0;
        hc_f = [| 0.0; infinity; neg_infinity |];
        hc_buckets = Array.make n_buckets 0;
      }
    in
    s.s_hcells.(id) <- cell;
    locked (fun () -> h.h_cells <- cell :: h.h_cells);
    cell
  end

let observe h v =
  if enabled () then begin
    let cell = hcell_of h in
    cell.hc_count <- cell.hc_count + 1;
    let f = cell.hc_f in
    f.(0) <- f.(0) +. v;
    if v < f.(1) then f.(1) <- v;
    if v > f.(2) then f.(2) <- v;
    if v > 0.0 then begin
      let i = bucket_index v - bucket_lo in
      cell.hc_buckets.(i) <- cell.hc_buckets.(i) + 1
    end
    else cell.hc_zero <- cell.hc_zero + 1
  end

let time_ms h f =
  if enabled () then begin
    let t0 = now () in
    match f () with
    | v ->
        observe h ((now () -. t0) *. 1000.0);
        v
    | exception e ->
        observe h ((now () -. t0) *. 1000.0);
        raise e
  end
  else f ()

(* merged snapshot of one histogram; [hs_buckets] is by bucket index *)
type hsnap = {
  hs_count : int;
  hs_zero : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : int array;
}

let merge_histogram_locked h =
  let buckets = Array.make n_buckets 0 in
  let count = ref 0 and zero = ref 0 in
  let sum = ref 0.0 and mn = ref infinity and mx = ref neg_infinity in
  List.iter
    (fun cell ->
      count := !count + cell.hc_count;
      zero := !zero + cell.hc_zero;
      sum := !sum +. cell.hc_f.(0);
      if cell.hc_f.(1) < !mn then mn := cell.hc_f.(1);
      if cell.hc_f.(2) > !mx then mx := cell.hc_f.(2);
      for i = 0 to n_buckets - 1 do
        buckets.(i) <- buckets.(i) + cell.hc_buckets.(i)
      done)
    h.h_cells;
  {
    hs_count = !count;
    hs_zero = !zero;
    hs_sum = !sum;
    hs_min = !mn;
    hs_max = !mx;
    hs_buckets = buckets;
  }

let merge_histogram h = locked (fun () -> merge_histogram_locked h)

let histogram_count h = (merge_histogram h).hs_count
let histogram_sum h = (merge_histogram h).hs_sum

let histogram_min h =
  let s = merge_histogram h in
  if s.hs_count = 0 then 0.0 else s.hs_min

let histogram_max h =
  let s = merge_histogram h in
  if s.hs_count = 0 then 0.0 else s.hs_max

let quantile_of_snap s q =
  if s.hs_count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank =
      max 1 (min s.hs_count (int_of_float (Float.ceil (q *. float_of_int s.hs_count))))
    in
    let est =
      if rank <= s.hs_zero then 0.0
      else begin
        let cum = ref s.hs_zero in
        let i = ref 0 in
        while !cum < rank && !i < n_buckets do
          cum := !cum + s.hs_buckets.(!i);
          if !cum < rank then i := !i + 1
        done;
        bucket_estimate (min (n_buckets - 1) !i + bucket_lo)
      end
    in
    (* exact bounds beat bucket estimates at the extremes *)
    Float.max s.hs_min (Float.min s.hs_max est)
  end

let quantile h q = quantile_of_snap (merge_histogram h) q

(* ------------------------------------------------------------------ *)
(* spans: a continuous profile as a per-domain call tree

   [with_span] pushes onto a domain-local stack of tree nodes, so hot
   nesting is lock-free; each node accumulates (count, total, max)
   plus GC deltas (minor/major words, compactions) for top-level
   spans, where the sampling cost amortizes over the whole scope.
   Readers merge every domain's forest by name. The pop restores the
   exact pre-push stack, so a raise anywhere inside — even one that
   skipped an inner span's own cleanup — cannot leak stack entries. *)

let with_span name f =
  if not (enabled ()) then f ()
  else begin
    let s = slab () in
    let parent = match s.s_pstack with [] -> s.s_proot | p :: _ -> p in
    let node =
      match Hashtbl.find_opt parent.pf_children name with
      | Some n -> n
      | None ->
          let n = new_pnode name in
          Hashtbl.replace parent.pf_children name n;
          n
    in
    let saved = s.s_pstack in
    let top_level = saved = [] in
    s.s_pstack <- node :: saved;
    let gc0 = if top_level then Some (Gc.quick_stat ()) else None in
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        let dt = now () -. t0 in
        s.s_pstack <- saved;
        node.pf_count <- node.pf_count + 1;
        node.pf_f.(0) <- node.pf_f.(0) +. dt;
        if dt > node.pf_f.(1) then node.pf_f.(1) <- dt;
        match gc0 with
        | None -> ()
        | Some g0 ->
            let g1 = Gc.quick_stat () in
            node.pf_f.(2) <- node.pf_f.(2) +. (g1.minor_words -. g0.minor_words);
            node.pf_f.(3) <- node.pf_f.(3) +. (g1.major_words -. g0.major_words);
            node.pf_compactions <-
              node.pf_compactions + (g1.compactions - g0.compactions))
      f
  end

(* merged, exported tree *)
type profile_node = {
  p_name : string;
  p_count : int;
  p_total_s : float;
  p_self_s : float;
  p_max_s : float;
  p_minor_words : float;
  p_major_words : float;
  p_compactions : int;
  p_children : profile_node list;
}

let profile_forest_locked () =
  (* collect the per-domain forests and merge recursively by name *)
  let rec merge (tbls : (string, pnode) Hashtbl.t list) =
    let names = Hashtbl.create 8 in
    List.iter (fun tbl -> Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) tbl) tbls;
    Hashtbl.fold (fun name () acc -> name :: acc) names []
    |> List.sort compare
    |> List.map (fun name ->
           let nodes = List.filter_map (fun tbl -> Hashtbl.find_opt tbl name) tbls in
           let count = List.fold_left (fun a n -> a + n.pf_count) 0 nodes in
           let total = List.fold_left (fun a n -> a +. n.pf_f.(0)) 0.0 nodes in
           let mx = List.fold_left (fun a n -> Float.max a n.pf_f.(1)) 0.0 nodes in
           let minor = List.fold_left (fun a n -> a +. n.pf_f.(2)) 0.0 nodes in
           let major = List.fold_left (fun a n -> a +. n.pf_f.(3)) 0.0 nodes in
           let comp = List.fold_left (fun a n -> a + n.pf_compactions) 0 nodes in
           let children = merge (List.map (fun n -> n.pf_children) nodes) in
           let child_total =
             List.fold_left (fun a c -> a +. c.p_total_s) 0.0 children
           in
           {
             p_name = name;
             p_count = count;
             p_total_s = total;
             p_self_s = Float.max 0.0 (total -. child_total);
             p_max_s = mx;
             p_minor_words = minor;
             p_major_words = major;
             p_compactions = comp;
             p_children = children;
           })
  in
  merge (List.map (fun s -> s.s_proot.pf_children) !all_slabs)

let profile () = locked profile_forest_locked

(* flat span view, for backward compatibility: nesting joined by "/" *)
let span_bindings () =
  let rec walk prefix nodes acc =
    List.fold_left
      (fun acc node ->
        let path = if prefix = "" then node.p_name else prefix ^ "/" ^ node.p_name in
        let acc = (path, node) :: acc in
        walk path node.p_children acc)
      acc nodes
  in
  walk "" (profile ()) [] |> List.sort (fun (a, _) (b, _) -> compare a b)

let span_stats path =
  List.assoc_opt path (span_bindings ())
  |> Option.map (fun n -> (n.p_count, n.p_total_s))

let folded () =
  let buf = Buffer.create 1024 in
  let rec walk prefix nodes =
    List.iter
      (fun node ->
        let stack = if prefix = "" then node.p_name else prefix ^ ";" ^ node.p_name in
        let us = max 0 (int_of_float (node.p_self_s *. 1e6)) in
        Buffer.add_string buf (Printf.sprintf "%s %d\n" stack us);
        walk stack node.p_children)
      nodes
  in
  walk "" (profile ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* registry *)

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ c -> List.iter (fun cell -> cell.cc_v <- 0) c.c_cells)
        counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_value 0.0) gauges;
      Hashtbl.iter
        (fun _ h ->
          List.iter
            (fun cell ->
              cell.hc_count <- 0;
              cell.hc_zero <- 0;
              cell.hc_f.(0) <- 0.0;
              cell.hc_f.(1) <- infinity;
              cell.hc_f.(2) <- neg_infinity;
              Array.fill cell.hc_buckets 0 n_buckets 0)
            h.h_cells)
        histograms;
      List.iter (fun s -> Hashtbl.reset s.s_proot.pf_children) !all_slabs)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histogram_json snap =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if snap.hs_buckets.(i) > 0 then
      buckets :=
        Json.Obj
          [ ("le", Json.Float (bucket_le (i + bucket_lo)));
            ("count", Json.Int snap.hs_buckets.(i)) ]
        :: !buckets
  done;
  let buckets =
    if snap.hs_zero > 0 then
      Json.Obj [ ("le", Json.Float 0.0); ("count", Json.Int snap.hs_zero) ]
      :: !buckets
    else !buckets
  in
  Json.Obj
    [
      ("count", Json.Int snap.hs_count);
      ("sum", Json.Float snap.hs_sum);
      ("min", Json.Float (if snap.hs_count = 0 then 0.0 else snap.hs_min));
      ("max", Json.Float (if snap.hs_count = 0 then 0.0 else snap.hs_max));
      ("p50", Json.Float (quantile_of_snap snap 0.5));
      ("p90", Json.Float (quantile_of_snap snap 0.9));
      ("p99", Json.Float (quantile_of_snap snap 0.99));
      ("buckets", Json.List buckets);
    ]

let rec profile_node_json n =
  Json.Obj
    [
      ("name", Json.String n.p_name);
      ("count", Json.Int n.p_count);
      ("total_s", Json.Float n.p_total_s);
      ("self_s", Json.Float n.p_self_s);
      ("max_s", Json.Float n.p_max_s);
      ( "gc",
        Json.Obj
          [
            ("minor_words", Json.Float n.p_minor_words);
            ("major_words", Json.Float n.p_major_words);
            ("compactions", Json.Int n.p_compactions);
          ] );
      ("children", Json.List (List.map profile_node_json n.p_children));
    ]

let to_json () =
  let spans = span_bindings () in
  let prof = profile () in
  locked (fun () ->
      let counters_j =
        sorted_bindings counters
        |> List.map (fun (name, c) ->
               ( name,
                 Json.Int
                   (List.fold_left (fun acc cell -> acc + cell.cc_v) 0 c.c_cells) ))
      in
      let gauges_j =
        sorted_bindings gauges
        |> List.map (fun (name, g) -> (name, Json.Float (Atomic.get g.g_value)))
      in
      let histograms_j =
        sorted_bindings histograms
        |> List.map (fun (name, h) -> (name, histogram_json (merge_histogram_locked h)))
      in
      let spans_j =
        List.map
          (fun (path, n) ->
            ( path,
              Json.Obj
                [
                  ("count", Json.Int n.p_count);
                  ("total_s", Json.Float n.p_total_s);
                  ("max_s", Json.Float n.p_max_s);
                ] ))
          spans
      in
      Json.Obj
        [
          ("version", Json.Int 2);
          ("counters", Json.Obj counters_j);
          ("gauges", Json.Obj gauges_j);
          ("histograms", Json.Obj histograms_j);
          ("spans", Json.Obj spans_j);
          ("profile", Json.List (List.map profile_node_json prof));
        ])

let to_table () =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let prof = profile () in
  let counters_b = locked (fun () -> sorted_bindings counters) in
  let gauges_b = locked (fun () -> sorted_bindings gauges) in
  let histograms_b = locked (fun () -> sorted_bindings histograms) in
  line "%-44s %14s" "counter" "value";
  List.iter
    (fun (name, c) -> line "%-44s %14d" name (counter_value c))
    counters_b;
  if gauges_b <> [] then begin
    line "";
    line "%-44s %14s" "gauge" "value";
    List.iter
      (fun (name, g) -> line "%-44s %14.2f" name (Atomic.get g.g_value))
      gauges_b
  end;
  if histograms_b <> [] then begin
    line "";
    line "%-44s %8s %10s %10s %10s %10s" "histogram" "count" "mean" "p50" "p99" "max";
    List.iter
      (fun (name, h) ->
        let s = merge_histogram h in
        let mean = if s.hs_count = 0 then 0.0 else s.hs_sum /. float_of_int s.hs_count in
        line "%-44s %8d %10.3f %10.3f %10.3f %10.3f" name s.hs_count mean
          (quantile_of_snap s 0.5) (quantile_of_snap s 0.99)
          (if s.hs_count = 0 then 0.0 else s.hs_max))
      histograms_b
  end;
  if prof <> [] then begin
    line "";
    line "%-44s %8s %12s %12s %14s" "profile" "count" "total" "self" "minor words";
    let rec walk depth nodes =
      List.iter
        (fun n ->
          let label = String.make (2 * depth) ' ' ^ n.p_name in
          line "%-44s %8d %10.3fms %10.3fms %14.0f" label n.p_count
            (1e3 *. n.p_total_s) (1e3 *. n.p_self_s) n.p_minor_words;
          walk (depth + 1) n.p_children)
        nodes
    in
    walk 0 prof
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* periodic snapshots: registry deltas for offline rate computation *)

type snapshot = {
  snap_ts : float;
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_hists : (string * (int * float)) list; (* count, sum *)
}

let snapshot () =
  locked (fun () ->
      {
        snap_ts = now ();
        snap_counters =
          sorted_bindings counters
          |> List.map (fun (name, c) ->
                 (name, List.fold_left (fun acc cell -> acc + cell.cc_v) 0 c.c_cells));
        snap_gauges =
          sorted_bindings gauges
          |> List.map (fun (name, g) -> (name, Atomic.get g.g_value));
        snap_hists =
          sorted_bindings histograms
          |> List.map (fun (name, h) ->
                 let s = merge_histogram_locked h in
                 (name, (s.hs_count, s.hs_sum)));
      })

let delta_json ?prev next =
  let prev_counter name =
    match prev with
    | None -> 0
    | Some p -> Option.value ~default:0 (List.assoc_opt name p.snap_counters)
  in
  let prev_gauge name =
    Option.bind prev (fun p -> List.assoc_opt name p.snap_gauges)
  in
  let prev_hist name =
    match prev with
    | None -> (0, 0.0)
    | Some p -> Option.value ~default:(0, 0.0) (List.assoc_opt name p.snap_hists)
  in
  let counters_j =
    List.filter_map
      (fun (name, v) ->
        let d = v - prev_counter name in
        if d = 0 then None else Some (name, Json.Int d))
      next.snap_counters
  in
  let gauges_j =
    List.filter_map
      (fun (name, v) ->
        match prev_gauge name with
        | Some v' when v' = v -> None
        | _ -> Some (name, Json.Float v))
      next.snap_gauges
  in
  let hists_j =
    List.filter_map
      (fun (name, (count, sum)) ->
        let pc, ps = prev_hist name in
        if count = pc && sum = ps then None
        else
          Some
            ( name,
              Json.Obj
                [ ("count", Json.Int (count - pc)); ("sum", Json.Float (sum -. ps)) ]
            ))
      next.snap_hists
  in
  Json.Obj
    [
      ("ts", Json.Float next.snap_ts);
      ( "dt",
        Json.Float
          (match prev with None -> 0.0 | Some p -> next.snap_ts -. p.snap_ts) );
      ("counters", Json.Obj counters_j);
      ("gauges", Json.Obj gauges_j);
      ("histograms", Json.Obj hists_j);
    ]
