(** Scale-ready metrics registry: domain-sharded counters and quantile
    histograms, gauges, and a continuous profile of nested spans.

    The paper's headline claims are resource claims (constant rounds,
    [O(eps^-(p+1) n)] edges, counts within [2(1+log Delta)] of
    optimal); this module lets the library observe them from the
    inside instead of post-hoc through the bench harness — and stays
    cheap when many OCaml 5 domains hammer the same metric.

    {b Sharding.} Counters and histograms keep one cell per domain
    that ever touches them, reached through a single [Domain.DLS]
    lookup; the hot-path mutation is a plain unshared write — no CAS,
    no mutex, no cross-core cache-line ping-pong. Readers ({!counter_value},
    {!quantile}, {!to_json}, …) merge the cells lazily under the
    registry mutex. While writer domains are live a merged read may be
    slightly stale (plain word-sized fields cannot tear); once the
    writers are joined, merged totals are exact. Per-domain cell slabs
    are recycled when a domain exits, so memory is bounded by the peak
    number of {e concurrent} domains.

    {b Cost model.} Instrumentation is {e disabled by default}: every
    mutation first reads a single atomic flag and returns immediately
    when it is off. Enabled, a counter bump is a DLS lookup plus one
    add; a histogram observation additionally takes one [log]. The
    obs-enabled hot path is gated in CI to within 5% of the
    obs-disabled one (bench/hotpath.ml [obs/*] rows). *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Master switch, off at startup. *)

(** {1 Counters} — monotone event counts (e.g. BFS expansions). *)

type counter

val counter : string -> counter
(** Find-or-register by name. Names are slash-separated paths, e.g.
    ["bfs/expansions"]. Handles are stable across {!reset}. *)

val incr : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int
(** Merged over every domain's cell. *)

(** {1 Gauges} — last-write-wins instantaneous values (edge counts). *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} — distributions with quantiles.

    Count/sum/min/max are exact. Positive observations are bucketed
    log-uniformly (DDSketch-style, base [1.04]), so any quantile is
    answered within [(gamma-1)/(gamma+1) < 2%] relative error; zero
    and negative observations occupy a dedicated bucket rendered with
    [le = 0]. *)

type histogram

val histogram : string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_min : histogram -> float
val histogram_max : histogram -> float
(** Exact observed extremes; [0.0] when empty. *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0 <= q <= 1]) of
    everything observed so far, within 2% relative error, clamped to
    the exact [min, max] envelope. [0.0] when empty. *)

val time_ms : histogram -> (unit -> 'a) -> 'a
(** [time_ms h f] runs [f] and observes its wall time in milliseconds
    — the service layer's latency-histogram idiom. Exceptions
    propagate after the observation; when disabled this is exactly
    [f ()]. *)

(** {1 Spans} — the continuous profile.

    [with_span] maintains a {e call tree}: a span opened inside
    another becomes a child node, and each node accumulates
    [(count, total, max)] wall time plus GC deltas (minor/major
    allocated words and compactions, sampled on top-level spans where
    the [Gc.quick_stat] cost amortizes). The open-span stack and the
    tree being written are domain-local, so span entry/exit takes no
    lock; {!profile} merges every domain's forest by node name. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Time [f] as a child of the innermost open span on this domain.
    When disabled this is exactly [f ()]. Exceptions propagate; the
    span still closes, and the pop restores the exact pre-push stack,
    so a raise can never leak a stack entry — even from a nested
    span. *)

val span_stats : string -> (int * float) option
(** [(count, total_seconds)] recorded under a slash-joined span path
    (e.g. ["distributed/run_with/collect"]), merged over domains. *)

type profile_node = {
  p_name : string;
  p_count : int;
  p_total_s : float;
  p_self_s : float;  (** total minus children's totals, clamped at 0 *)
  p_max_s : float;
  p_minor_words : float;
  p_major_words : float;
  p_compactions : int;
  p_children : profile_node list;
}

val profile : unit -> profile_node list
(** The merged call forest, children sorted by name. *)

val folded : unit -> string
(** The profile as folded stacks — one line per node,
    ["root;child;leaf <self time in microseconds>"] — directly
    consumable by flamegraph.pl and speedscope. *)

(** {1 Registry} *)

val reset : unit -> unit
(** Zero every metric (handles stay valid); drop the profile. Call
    while metric writers are quiescent. *)

val to_json : unit -> Json.t
(** Snapshot: [{"version": 2, "counters": {..}, "gauges": {..},
    "histograms": {..}, "spans": {..}, "profile": [..]}]. Histograms
    are [{"count", "sum", "min", "max", "p50", "p90", "p99",
    "buckets": [{"le", "count"}..]}]; spans are the backward-compatible
    flat [{"count", "total_s", "max_s"}] paths; profile nodes are
    [{"name", "count", "total_s", "self_s", "max_s",
    "gc": {"minor_words", "major_words", "compactions"},
    "children": [..]}]. *)

val to_table : unit -> string
(** Human-readable dump: counters, gauges, histograms (with p50/p99)
    and the indented profile tree. *)

(** {1 Periodic snapshots} — JSONL registry deltas for offline rate
    computation ([rspan ... --stats-every]). *)

type snapshot

val snapshot : unit -> snapshot
(** Capture counter values, gauge values and histogram (count, sum)
    moments, with a timestamp. *)

val delta_json : ?prev:snapshot -> snapshot -> Json.t
(** One JSONL record: [{"ts", "dt", "counters": {name: delta},
    "gauges": {name: value}, "histograms": {name: {"count": delta,
    "sum": delta}}}], listing only entries that changed since [prev]
    (all non-zero entries when [prev] is omitted). *)

val now : unit -> float
(** The clock used for spans (seconds; [Unix.gettimeofday]). Exposed
    so other layers time with the same base. *)
