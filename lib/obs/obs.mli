(** Metrics registry: counters, gauges, histograms and nested spans.

    The paper's headline claims are resource claims (constant rounds,
    [O(eps^-(p+1) n)] edges, counts within [2(1+log Delta)] of
    optimal); this module lets the library observe them from the
    inside instead of post-hoc through the bench harness.

    Everything hangs off one process-global registry. Instrumentation
    is {e disabled by default}: every mutation first reads a single
    atomic flag and returns immediately when it is off, so hot paths
    (BFS inner loops, the parallel runtime) pay one load + branch per
    call site. Handles are registered eagerly (cheap) and are stable
    across {!reset}.

    Thread-safety: counters and gauges are atomics; histograms carry
    their own mutex; span aggregates are guarded by the registry
    mutex; the span {e stack} is domain-local, so spans opened in
    different domains nest independently. All of it can be touched
    concurrently from OCaml 5 domains (the [Parallel] module does). *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Master switch, off at startup. *)

(** {1 Counters} — monotone event counts (e.g. BFS expansions). *)

type counter

val counter : string -> counter
(** Find-or-register by name. Names are slash-separated paths, e.g.
    ["bfs/expansions"]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} — last-write-wins instantaneous values (edge counts). *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} — distributions (candidate-set sizes, per-domain
    wall time). Buckets are powers of two over the observed value;
    count/sum/min/max are exact. *)

type histogram

val histogram : string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Spans} — wall-clock timed scopes with nesting. A span opened
    inside another is recorded under the joined path ("a/b"), giving a
    flat profile of the call tree. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Time [f] and record (count, total, max) under the current domain's
    span path. When disabled this is exactly [f ()]. Exceptions
    propagate; the span still closes. *)

val span_stats : string -> (int * float) option
(** [(count, total_seconds)] recorded under a full span path. *)

(** {1 Registry} *)

val reset : unit -> unit
(** Zero every metric (handles stay valid); drop span aggregates. *)

val to_json : unit -> Json.t
(** Snapshot: [{"counters": {..}, "gauges": {..}, "histograms": {..},
    "spans": {..}}]. Histograms are
    [{"count", "sum", "min", "max", "buckets": [{"le", "count"}..]}];
    spans are [{"count", "total_s", "max_s"}]. *)

val to_table : unit -> string
(** Human-readable fixed-width dump of the same snapshot. *)

val now : unit -> float
(** The clock used for spans (seconds; [Unix.gettimeofday]). Exposed
    so other layers time with the same base. *)
