type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if f = 0.0 then
    (* negative zero must keep a decimal point: "-0" would re-parse as
       Int 0 and lose the sign bit *)
    if Float.sign_bit f then "-0.0" else "0"
  else begin
    (* shortest %g representation that round-trips to the exact same
       float — "%.17g" always does, but most values need far fewer
       digits (0.1 prints as "0.1", not "0.1000000000000000055...") *)
    let rec shortest p =
      if p >= 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else shortest (p + 1)
    in
    shortest 1
  end

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let indent depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i x ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent (depth + 1);
            go (depth + 1) x)
          xs;
        newline ();
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (k, x) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent (depth + 1);
            escape buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) x)
          kvs;
        newline ();
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' -> Buffer.add_char buf '"'; go ()
            | '\\' -> Buffer.add_char buf '\\'; go ()
            | '/' -> Buffer.add_char buf '/'; go ()
            | 'b' -> Buffer.add_char buf '\b'; go ()
            | 'f' -> Buffer.add_char buf '\012'; go ()
            | 'n' -> Buffer.add_char buf '\n'; go ()
            | 'r' -> Buffer.add_char buf '\r'; go ()
            | 't' -> Buffer.add_char buf '\t'; go ()
            | 'u' ->
                if !pos + 4 > n then fail "bad \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                in
                (* encode as UTF-8 (BMP only; surrogates are kept raw) *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                go ()
            | _ -> fail "bad escape")
        | c -> Buffer.add_char buf c; go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let float_eq a b =
  a = b
  || Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> float_eq x y
  | Int x, Float y | Float y, Int x -> float_eq (float_of_int x) y
  | String x, String y -> x = y
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2) xs ys
  | _ -> false
