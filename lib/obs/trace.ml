type sink = {
  write : string -> unit;
  finish : unit -> unit;
  lock : Mutex.t;
  mutable n_events : int;
  mutable closed : bool;
}

let make write finish =
  { write; finish; lock = Mutex.create (); n_events = 0; closed = false }

let to_channel oc =
  make (fun line -> output_string oc line) (fun () -> flush oc)

let to_file path =
  let oc = open_out path in
  make
    (fun line -> output_string oc line)
    (fun () ->
      flush oc;
      close_out oc)

let to_buffer buf = make (Buffer.add_string buf) (fun () -> ())

let emit sink fields =
  Mutex.lock sink.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink.lock)
    (fun () ->
      if sink.closed then invalid_arg "Trace.emit: sink is closed";
      sink.write (Json.to_string (Json.Obj fields));
      sink.write "\n";
      sink.n_events <- sink.n_events + 1)

let events sink = sink.n_events

let close sink =
  Mutex.lock sink.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink.lock)
    (fun () ->
      if not sink.closed then begin
        sink.closed <- true;
        sink.finish ()
      end)
