(** JSONL event-trace sinks.

    The distributed layer (and the CLI's route path) can stream
    structured events — round boundaries, per-message sends, halts —
    one JSON object per line, for offline replay and inspection.
    Unlike {!Obs} metrics, traces are explicit opt-in: a sink is
    threaded to the instrumented function, so there is no global
    state and no cost when no sink is passed.

    Sinks are mutex-protected; events may be emitted from any domain. *)

type sink

val to_channel : out_channel -> sink
(** Write lines to an existing channel. {!close} flushes but does not
    close the channel. *)

val to_file : string -> sink
(** Open (truncate) a file; {!close} closes it. *)

val to_buffer : Buffer.t -> sink
(** Accumulate lines in memory (used by tests). *)

val emit : sink -> (string * Json.t) list -> unit
(** Append one event as a compact single-line JSON object. By
    convention the first field is [("ev", String kind)]. *)

val events : sink -> int
(** Number of events emitted so far. *)

val close : sink -> unit
(** Flush (and close, for file sinks). Idempotent; emitting after
    close raises [Invalid_argument]. *)
