(** Minimal JSON values, printing and parsing.

    The observability layer serializes metric registries and trace
    events without pulling in an external JSON dependency; this module
    is the small common denominator it needs: a value type, a compact
    (or pretty) printer that always emits valid JSON, and a strict
    recursive-descent parser good enough to round-trip the printer's
    output (used by the tests and by [rspan]'s schema checks). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize. [~pretty:true] indents objects and lists by two spaces.
    Finite floats print as the shortest [%g] form that parses back to
    the exact same float (up to ["%.17g"]), so printing never loses
    precision — even at [Float.max_float] scale. Non-finite floats are
    emitted as [null] (JSON has no NaN). Integral floats may print
    without ["."]/["e"] and therefore re-parse as [Int]; {!equal}
    treats that as equal. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.
    Numbers without [.], [e] or [E] parse as [Int]. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to the first [k], if any;
    [None] on non-objects. *)

val equal : t -> t -> bool
(** Structural equality, comparing floats within [1e-9] relative
    tolerance (printer round-trips are not bit-exact). *)
