(** Topology deltas: batchable descriptions of link and node churn.

    The unit of change the dynamic-repair subsystem consumes. A delta
    is an ordered batch of operations applied to a fixed vertex
    universe [0 .. n-1] (vertices are never created or destroyed —
    a "down" node merely loses its incident edges, mirroring
    {!Rs_graph.Graph.remove_vertex}). Ops inside one batch apply
    sequentially, so [Node_down u] followed by [Node_up (u, links)]
    models a crash/recover cycle in a single repair step.

    Deltas are the boundary between the fault regime (PR 4's plans,
    mobility-induced link flips) and {!Repair}: anything that changes
    the graph is first normalized into the {e effective} set of added
    and removed edges, which is what dirty-set tracking keys on —
    redundant ops (adding a present edge, removing an absent one)
    contribute nothing and cost nothing. *)

open Rs_graph

type op =
  | Add_edge of int * int
  | Remove_edge of int * int
  | Node_down of int  (** remove every edge currently incident *)
  | Node_up of int * int list  (** re-link the node to the listed neighbors *)

type t = op list
(** A batch, applied in order. The empty list is the quiescent delta. *)

val effect : Graph.t -> t -> (int * int) list * (int * int) list
(** [effect g d] is the {e net} [(added, removed)] canonical edge
    lists of applying [d] to [g] — ops that cancel out (or are
    redundant against [g]) do not appear. Raises [Invalid_argument] on
    out-of-range vertices or self-loops. *)

val apply : Graph.t -> t -> Graph.t
(** The graph after the batch (same vertex count). When the net effect
    is empty this returns [g] itself (physical equality), so quiescent
    deltas are observably free. *)

val diff : Graph.t -> Graph.t -> t
(** [diff g g'] is a delta turning [g] into [g'] (edge adds and
    removes; both graphs must have the same vertex count, checked).
    [apply g (diff g g')] equals [g']. *)

val touched : added:(int * int) list -> removed:(int * int) list -> int list
(** Distinct endpoints of the net effect, ascending — the seeds of
    dirty-set tracking. *)

(** {1 Delta files}

    Line-oriented text, [#] comments and blank lines ignored:

    {v
    add U V
    remove U V
    down U
    up U V1 V2 ...
    v} *)

val parse : string -> t
(** Raises [Failure] naming the offending line on malformed input. *)

val to_string : t -> string
(** The delta in the file format above, one op per line. Left inverse
    of {!parse}: [parse (to_string d) = d] for every delta whose
    [Node_up] links are non-empty (the only shape [parse] can produce;
    asserted by a QCheck round-trip property). This text is also the
    payload the [Rs_store] write-ahead log records carry. *)

val load : string -> t
(** [parse] over a file's contents. Raises [Sys_error] on I/O
    failure. *)

val pp_op : Format.formatter -> op -> unit
