(** Incremental spanner repair under topology deltas.

    The paper's locality promise (Propositions 1 and 5) made
    operational: a node's dominating tree is a function of its bounded
    neighborhood only — radius [max r (r-1+beta)] for the Prop.-1 tree
    families, radius 2 for the (2,0)/(2,1) k-connecting star families —
    so when a delta touches the topology, only the roots whose
    {e relevant neighborhood} (in the old {e or} the new graph)
    intersects the changed edges need their trees recomputed. [Repair]
    maintains the full union-of-trees spanner across deltas by:

    + computing the dirty set with bounded multi-source BFS from the
      delta's touched endpoints, at the spec's locality radius;
    + recomputing dominating trees for dirty roots only (reusing one
      {!Rs_graph.Bfs.Scratch} across roots, and the lazy greedy covers
      underneath the constructions);
    + splicing the new trees into the maintained edge multiset —
      per-edge reference counts over canonical pairs, so an edge leaves
      the spanner exactly when its last contributing tree drops it;
    + verifying the repair — every retained tree edge must survive in
      the new graph, the clean trees on the dirty fringe must still be
      dominating, and the (alpha, beta) stretch bound must hold from
      every dirty source — and {e escalating} when verification fails:
      dirty set -> 2-hop closure -> full rebuild (the ladder).

    With the correct locality radius the ladder never escalates and
    the repaired spanner is identical, root tree by root tree, to a
    from-scratch build on the new graph (the equivalence property
    tests assert exactly this); the ladder exists so that an
    under-estimated radius (see [?dirty_radius]) degrades to a wider,
    costlier — but still verified — repair instead of a wrong one. *)

open Rs_graph

(** Which dominating-tree family the maintained spanner unions. The
    four specs correspond to {!Rs_core.Remote_spanner.rem_span},
    [low_stretch], [exact_distance]/[k_connecting] and
    [k_connecting_mis]/[two_connecting] respectively. *)
type spec =
  | Gdy of { r : int; beta : int }  (** Algorithm 1 trees *)
  | Mis of { r : int }  (** Algorithm 2 trees (beta = 1) *)
  | Gdy_k of { k : int }  (** Algorithm 4 stars, (2,0) *)
  | Mis_k of { k : int }  (** Algorithm 5 trees, (2,1) *)

val pp_spec : Format.formatter -> spec -> unit

val radius : spec -> int
(** Locality radius of the spec's tree construction: a root whose
    distance to every delta endpoint exceeds this (in both the old and
    the new graph) provably computes the same tree. *)

val alpha_beta : spec -> (float * float) option
(** The (alpha, beta) remote-spanner guarantee of the union, used by
    the scoped verification gate; [None] for parameterizations the
    paper proves no distance bound for (e.g. [Gdy] with [beta >= 2] —
    those repairs are still gated on tree domination). *)

val build : spec -> Graph.t -> Edge_set.t
(** From-scratch union of the spec's trees over all roots — the
    reference the repaired spanner is checked against. *)

(** {1 Maintained state} *)

type t
(** A graph, one dominating tree per root, and their refcounted edge
    union. *)

val init : spec -> Graph.t -> t
(** Full build: one tree per root (n bounded traversals). *)

val graph : t -> Graph.t
(** The current host graph ({e after} all applied deltas). *)

val spanner : t -> Edge_set.t
(** The maintained spanner over {!graph}. Owned by the repair state —
    do not mutate; it is replaced wholesale by {!apply}. *)

val pairs : t -> (int * int) list
(** The spanner as sorted canonical pairs — host-independent, for
    equivalence checks against a from-scratch build. *)

val publish : t -> Graph.t * Edge_set.t
(** The current [(graph, spanner)] pair as an immutable snapshot:
    {!apply} replaces both values wholesale (a fresh graph and a fresh
    edge set are built for every non-quiescent delta) and never
    mutates a previously returned one, so the pair may be handed to
    concurrent reader domains and stays valid — frozen at this
    generation — across later applies. This is the publication seam
    the resident service's atomic snapshot pointer is built on. *)

val tree_edges : t -> int -> (int * int) list
(** [(parent, child)] edges of the maintained tree of one root,
    shallow-first. *)

val export_trees : t -> (int * int) list array
(** Per-root [(parent, child)] tree edge lists, shallow-first — the
    exact state a durable snapshot must persist for {!restore} to
    resurrect this value without rerunning any construction. The
    returned array is fresh; the lists are shared but immutable. *)

val restore : spec -> Graph.t -> trees:(int * int) list array -> t
(** Rebuild maintained state from stored per-root trees: refcounts and
    the spanner edge set are rederived, {e no} BFS or tree construction
    runs — this is what makes crash recovery from a snapshot fast.
    Validates that every stored edge exists in [g] and that each list
    replays into a well-formed rooted tree; raises [Failure] with a
    one-line diagnostic otherwise. [restore spec g ~trees:(export_trees
    st)] is equivalent to [st] whenever [g] equals [graph st]. *)

type level =
  | Local  (** dirty set only — the fast path *)
  | Widened  (** escalated once: 2-hop closure of the dirty set *)
  | Full  (** escalated twice: from-scratch rebuild *)

type outcome = {
  dirty : int;  (** size of the initial dirty set *)
  rebuilt : int;  (** trees recomputed, across all ladder rungs *)
  escalations : int;  (** ladder rungs climbed (0 on the fast path) *)
  level : level;  (** rung at which verification passed *)
  edges_changed : int;  (** spanner edges added + removed by the repair *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val apply : ?dirty_radius:int -> t -> Delta.t -> outcome
(** Apply one delta batch and repair the spanner. A delta with empty
    net effect recomputes nothing and leaves both {!graph} and
    {!spanner} physically untouched. Records [repair/*] counters
    (dirty nodes, trees rebuilt, escalations, saved BFS runs) and the
    [repair/latency] histogram (milliseconds per apply).

    [?dirty_radius] overrides the spec's locality radius — a testing
    and experimentation hook: an under-estimate forces the verification
    gate to fail and exercises the escalation ladder. *)

val incremental_target : spec -> Graph.t -> (int * int) list
(** A stateful maintainer for {!Rs_distributed.Periodic.simulate}'s
    [?incremental] hook: the first call initializes a repair state from
    the given graph, every later call diffs against the previous graph
    and repairs; returns the maintained spanner as sorted canonical
    pairs. Each returned closure owns its own state. *)
