open Rs_graph
module Dom_tree = Rs_core.Dom_tree
module Dom_tree_k = Rs_core.Dom_tree_k
module Obs = Rs_obs.Obs

type spec =
  | Gdy of { r : int; beta : int }
  | Mis of { r : int }
  | Gdy_k of { k : int }
  | Mis_k of { k : int }

let pp_spec fmt = function
  | Gdy { r; beta } -> Format.fprintf fmt "gdy(r=%d,beta=%d)" r beta
  | Mis { r } -> Format.fprintf fmt "mis(r=%d)" r
  | Gdy_k { k } -> Format.fprintf fmt "gdy_k(k=%d)" k
  | Mis_k { k } -> Format.fprintf fmt "mis_k(k=%d)" k

(* Locality radii, by inspection of the constructions:
   - [Dom_tree.gdy g ~r ~beta u] explores B(u, r + beta) but only ever
     {e reads adjacency} of vertices it may pick or cover — spheres up
     to r and annuli up to r - 1 + beta — so the tree is a function of
     the edges with an endpoint within max r (r - 1 + beta) of u.
   - [Dom_tree.mis] selects inside B(u, r) and grafts BFS paths there.
   - [gdy_k]/[mis_k] read the 2-ball only (stars over direct relays). *)
let radius = function
  | Gdy { r; beta } -> max r (r - 1 + beta)
  | Mis { r } -> r
  | Gdy_k _ | Mis_k _ -> 2

(* (alpha, beta) guarantees of the union (paper, Prop. 1 / 5 / 4):
   (r, 1)-dominating trees with r = ceil(1/eps)+1 give a
   (1+eps, 1-2eps)-RS, i.e. eps = 1/(r-1) for the r at hand;
   (2, 0)-trees give (1, 0); (2, 1)-trees are the r = 2, eps = 1 case,
   i.e. (2, -1). *)
let alpha_beta = function
  | Gdy { r = 2; beta = 0 } -> Some (1.0, 0.0)
  | Gdy { r; beta = 1 } when r >= 2 ->
      let eps = 1.0 /. float_of_int (r - 1) in
      Some (1.0 +. eps, 1.0 -. (2.0 *. eps))
  | Mis { r } when r >= 2 ->
      let eps = 1.0 /. float_of_int (r - 1) in
      Some (1.0 +. eps, 1.0 -. (2.0 *. eps))
  | Gdy_k _ -> Some (1.0, 0.0)
  | Mis_k _ -> Some (2.0, -1.0)
  | Gdy _ | Mis _ -> None

let tree_of spec ~scratch g u =
  match spec with
  | Gdy { r; beta } -> Dom_tree.gdy ~scratch g ~r ~beta u
  | Mis { r } -> Dom_tree.mis ~scratch g ~r u
  | Gdy_k { k } -> Dom_tree_k.gdy_k ~scratch g ~k u
  | Mis_k { k } -> Dom_tree_k.mis_k ~scratch g ~k u

let tree_valid spec g t =
  match spec with
  | Gdy { r; beta } -> Dom_tree.is_dominating g ~r ~beta t
  | Mis { r } -> Dom_tree.is_dominating g ~r ~beta:1 t
  | Gdy_k { k } -> Dom_tree_k.is_k_dominating g ~k ~beta:0 t
  | Mis_k { k } -> Dom_tree_k.is_k_dominating g ~k ~beta:1 t

(* ------------------------------------------------------------------ *)
(* metrics *)

let c_applies = Obs.counter "repair/applies"
let c_dirty = Obs.counter "repair/dirty_nodes"
let c_rebuilt = Obs.counter "repair/trees_rebuilt"
let c_escalations = Obs.counter "repair/escalations"
let c_saved = Obs.counter "repair/saved_bfs"
let c_gate_failures = Obs.counter "repair/gate_failures"
let h_latency = Obs.histogram "repair/latency"

(* ------------------------------------------------------------------ *)
(* maintained state *)

type t = {
  spec : spec;
  mutable g : Graph.t;
  mutable tree_edges : (int * int) list array;
      (* per root: (parent, child), shallow-first, so trees rebuild by
         replaying [Tree.add_edge] in order *)
  counts : (int * int, int) Hashtbl.t;  (* canonical pair -> #owning trees *)
  scratch : Bfs.Scratch.t;  (* constructions + dirty-set traversal *)
  verify_scratch : Bfs.Scratch.t;  (* second lane for the (alpha, beta) gate *)
  mutable spanner : Edge_set.t;
}

let graph st = st.g
let spanner st = st.spanner
let publish st = (st.g, st.spanner)

let pairs st =
  List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) st.counts [])

let tree_edges st u = st.tree_edges.(u)

let canonical u v = if u <= v then (u, v) else (v, u)

(* Per-apply log of pairs whose membership may have flipped: pair ->
   was it in the spanner before this apply. Lets [edges_changed] count
   the symmetric difference in O(touched pairs), not O(m). *)
let note changed counts p =
  if not (Hashtbl.mem changed p) then Hashtbl.add changed p (Hashtbl.mem counts p)

let incr_pair st changed (p, c) =
  let key = canonical p c in
  note changed st.counts key;
  Hashtbl.replace st.counts key
    (1 + Option.value ~default:0 (Hashtbl.find_opt st.counts key))

let decr_pair st changed (p, c) =
  let key = canonical p c in
  note changed st.counts key;
  match Hashtbl.find_opt st.counts key with
  | Some 1 -> Hashtbl.remove st.counts key
  | Some n -> Hashtbl.replace st.counts key (n - 1)
  | None -> assert false

(* Tree edges in a deterministic shallow-first order: parents always
   precede children, so the list replays into a [Tree.t]. *)
let ordered_edges tree =
  Tree.edges tree
  |> List.map (fun (p, c) -> (Tree.depth tree c, c, p))
  |> List.sort compare
  |> List.map (fun (_, c, p) -> (p, c))

let stored_tree ~n u edges =
  let t = Tree.create ~n ~root:u in
  List.iter (fun (p, c) -> Tree.add_edge t ~parent:p ~child:c) edges;
  t

let recompute st changed g u =
  List.iter (decr_pair st changed) st.tree_edges.(u);
  let tree = tree_of st.spec ~scratch:st.scratch g u in
  let edges = ordered_edges tree in
  st.tree_edges.(u) <- edges;
  List.iter (incr_pair st changed) edges

let materialize st g =
  let es = Edge_set.create g in
  Hashtbl.iter (fun (u, v) _ -> Edge_set.add es u v) st.counts;
  es

let init spec g =
  Obs.with_span "repair/init" (fun () ->
      let n = Graph.n g in
      let st =
        {
          spec;
          g;
          tree_edges = Array.make n [];
          counts = Hashtbl.create (4 * n);
          scratch = Bfs.Scratch.create ();
          verify_scratch = Bfs.Scratch.create ();
          spanner = Edge_set.create g;
        }
      in
      let changed = Hashtbl.create 16 in
      for u = 0 to n - 1 do
        recompute st changed g u
      done;
      st.spanner <- materialize st g;
      st)

let build spec g = spanner (init spec g)

let export_trees st = Array.copy st.tree_edges

let restore spec g ~trees =
  let n = Graph.n g in
  if Array.length trees <> n then
    failwith
      (Printf.sprintf "Repair.restore: %d stored trees for a %d-vertex graph"
         (Array.length trees) n);
  let st =
    {
      spec;
      g;
      tree_edges = Array.make n [];
      counts = Hashtbl.create (4 * n);
      scratch = Bfs.Scratch.create ();
      verify_scratch = Bfs.Scratch.create ();
      spanner = Edge_set.create g;
    }
  in
  let changed = Hashtbl.create 16 in
  Array.iteri
    (fun u edges ->
      List.iter
        (fun (p, c) ->
          if not (Graph.mem_edge g p c) then
            failwith
              (Printf.sprintf
                 "Repair.restore: tree %d edge (%d,%d) absent from the graph" u p c))
        edges;
      (* replay through [Tree.add_edge] so a structurally bogus list
         (orphan child, conflicting parents) is rejected here, not
         discovered as a corrupt spanner later *)
      (try ignore (stored_tree ~n u edges)
       with Invalid_argument msg ->
         failwith (Printf.sprintf "Repair.restore: tree %d malformed: %s" u msg));
      st.tree_edges.(u) <- edges;
      List.iter (incr_pair st changed) edges)
    trees;
  st.spanner <- materialize st g;
  st

(* ------------------------------------------------------------------ *)
(* apply *)

type level = Local | Widened | Full

type outcome = {
  dirty : int;
  rebuilt : int;
  escalations : int;
  level : level;
  edges_changed : int;
}

let pp_level fmt = function
  | Local -> Format.pp_print_string fmt "local"
  | Widened -> Format.pp_print_string fmt "widened"
  | Full -> Format.pp_print_string fmt "full"

let pp_outcome fmt o =
  Format.fprintf fmt "dirty=%d rebuilt=%d escalations=%d level=%a edges_changed=%d"
    o.dirty o.rebuilt o.escalations pp_level o.level o.edges_changed

(* Min distance from any seed, bounded by [radius], measured in BOTH
   graphs: a removed edge is only traversable in the old graph, an
   added one only in the new, and a root is affected if the change
   sits inside its relevant neighborhood in either. *)
let seed_depths st ~old_g ~new_g ~seeds ~radius =
  let n = Graph.n new_g in
  let depth = Array.make n max_int in
  let scan g =
    List.iter
      (fun w ->
        Bfs.Scratch.run ~radius st.scratch g w;
        Bfs.Scratch.iter_visited st.scratch (fun v ->
            let d = Bfs.Scratch.dist st.scratch v in
            if d < depth.(v) then depth.(v) <- d))
      seeds
  in
  scan old_g;
  scan new_g;
  depth

(* Gate (a): every maintained edge must still exist in the new graph —
   a retained (clean) tree referencing a vanished edge means the dirty
   set missed a root. *)
let gate_edges_exist st g' =
  try
    Hashtbl.iter
      (fun (u, v) _ -> if not (Graph.mem_edge g' u v) then raise Exit)
      st.counts;
    true
  with Exit -> false

(* Gate (b): clean trees on the fringe of the dirty region must still
   be dominating for their roots in the new graph. The fringe is
   computed at the spec's {e true} locality radius, so with the
   default radius it is empty (locality guarantees the property) and
   with an under-estimated [?dirty_radius] it is exactly the at-risk
   annulus. *)
let gate_fringe_valid st g' ~fringe ~recomputed =
  let n = Graph.n g' in
  List.for_all
    (fun u ->
      recomputed.(u)
      || tree_valid st.spec g' (stored_tree ~n u st.tree_edges.(u)))
    fringe

(* Gate (d): direct (alpha, beta) distance check from every dirty
   source, mirroring [Verify.remote_spanner_violations] (sources
   restricted to the dirty region). *)
let gate_alpha_beta st g' ~h_adj ~dirty =
  match alpha_beta st.spec with
  | None -> true
  | Some (alpha, beta) ->
      let n = Graph.n g' in
      List.for_all
        (fun u ->
          Bfs.Scratch.run st.scratch g' u;
          Bfs.Scratch.run_augmented st.verify_scratch g' h_adj u;
          let ok = ref true in
          for v = 0 to n - 1 do
            if !ok && v <> u then begin
              let dg = Bfs.Scratch.dist st.scratch v in
              if dg > 1 then begin
                let bound = (alpha *. float_of_int dg) +. beta in
                let reached = Bfs.Scratch.reached st.verify_scratch v in
                if
                  (not reached)
                  || float_of_int (Bfs.Scratch.dist st.verify_scratch v)
                     > bound +. 1e-9
                then ok := false
              end
            end
          done;
          !ok)
        dirty

let apply ?dirty_radius st delta =
  Obs.with_span "repair/apply" (fun () ->
      let t0 = Obs.now () in
      Obs.incr c_applies;
      let n = Graph.n st.g in
      let added, removed = Delta.effect st.g delta in
      if added = [] && removed = [] then begin
        (* Quiescent: nothing moved, nothing recomputed, state
           physically untouched. *)
        Obs.add c_saved n;
        Obs.observe h_latency ((Obs.now () -. t0) *. 1000.0);
        { dirty = 0; rebuilt = 0; escalations = 0; level = Local; edges_changed = 0 }
      end
      else begin
        (* Build the new graph straight from the net effect: [added]
           and [removed] are sorted canonical lists, and [Graph.edges]
           is in the same order, so one filter + merge keeps the edge
           list sorted without re-deriving the delta's edge tables. *)
        let g' =
          let gone = Hashtbl.create 16 in
          List.iter (fun p -> Hashtbl.replace gone p ()) removed;
          let kept =
            Array.to_list (Graph.edges st.g)
            |> List.filter (fun p -> not (Hashtbl.mem gone p))
          in
          Graph.make ~n (List.merge compare kept added)
        in
        let seeds = Delta.touched ~added ~removed in
        let r_spec = radius st.spec in
        let r_used = Option.value dirty_radius ~default:r_spec in
        let r_check = max r_used r_spec in
        let depth =
          Obs.with_span "dirty_set" (fun () ->
              seed_depths st ~old_g:st.g ~new_g:g' ~seeds ~radius:r_check)
        in
        let dirty = ref [] and fringe = ref [] in
        for v = n - 1 downto 0 do
          if depth.(v) <= r_used then dirty := v :: !dirty
          else if depth.(v) <= r_check then fringe := v :: !fringe
        done;
        let dirty = !dirty and fringe = !fringe in
        Obs.add c_dirty (List.length dirty);
        let changed = Hashtbl.create 64 in
        let recomputed = Array.make n false in
        let rebuild us =
          Obs.with_span "rebuild" @@ fun () ->
          List.iter
            (fun u ->
              if not recomputed.(u) then begin
                recomputed.(u) <- true;
                recompute st changed g' u
              end)
            us
        in
        rebuild dirty;
        let escalations = ref 0 in
        let gates_pass () =
          Obs.with_span "gates" @@ fun () ->
          gate_edges_exist st g'
          &&
          let h_adj =
            (* adjacency straight off the refcounts: gate (a) just
               certified every pair as a [g'] edge *)
            let deg = Array.make n 0 in
            Hashtbl.iter
              (fun (u, v) _ ->
                deg.(u) <- deg.(u) + 1;
                deg.(v) <- deg.(v) + 1)
              st.counts;
            let adj = Array.init n (fun u -> Array.make deg.(u) 0) in
            Hashtbl.iter
              (fun (u, v) _ ->
                deg.(u) <- deg.(u) - 1;
                adj.(u).(deg.(u)) <- v;
                deg.(v) <- deg.(v) - 1;
                adj.(v).(deg.(v)) <- u)
              st.counts;
            adj
          in
          gate_fringe_valid st g' ~fringe ~recomputed
          && gate_alpha_beta st g' ~h_adj ~dirty
        in
        let level =
          if gates_pass () then Local
          else begin
            Obs.incr c_gate_failures;
            Obs.incr c_escalations;
            incr escalations;
            (* Widened rung: 2-hop closure of the dirty region, again
               in both graphs. *)
            let closure =
              seed_depths st ~old_g:st.g ~new_g:g' ~seeds:dirty ~radius:2
            in
            let widened = ref [] in
            for v = n - 1 downto 0 do
              if closure.(v) <= 2 then widened := v :: !widened
            done;
            rebuild !widened;
            if gates_pass () then Widened
            else begin
              Obs.incr c_gate_failures;
              Obs.incr c_escalations;
              incr escalations;
              (* Full rung: from-scratch rebuild on the new graph —
                 correct by construction, no gate to pass. *)
              rebuild (List.init n Fun.id);
              Full
            end
          end
        in
        let rebuilt_total =
          Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 recomputed
        in
        Obs.add c_rebuilt rebuilt_total;
        Obs.add c_saved (n - rebuilt_total);
        st.g <- g';
        st.spanner <- materialize st g';
        let edges_changed =
          Hashtbl.fold
            (fun p before acc ->
              if before <> Hashtbl.mem st.counts p then acc + 1 else acc)
            changed 0
        in
        Obs.observe h_latency ((Obs.now () -. t0) *. 1000.0);
        {
          dirty = List.length dirty;
          rebuilt = rebuilt_total;
          escalations = !escalations;
          level;
          edges_changed;
        }
      end)

let incremental_target spec =
  let state = ref None in
  fun g ->
    let st =
      match !state with
      | None ->
          let st = init spec g in
          state := Some st;
          st
      | Some st ->
          if st.g != g then ignore (apply st (Delta.diff st.g g));
          st
    in
    pairs st
