open Rs_graph

type op =
  | Add_edge of int * int
  | Remove_edge of int * int
  | Node_down of int
  | Node_up of int * int list

type t = op list

let check_vertex n v =
  if v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Delta: vertex %d out of range [0..%d)" v n)

let check_edge n u v =
  check_vertex n u;
  check_vertex n v;
  if u = v then invalid_arg (Printf.sprintf "Delta: self-loop at vertex %d" u)

(* Edge sets as int-encoded canonical pairs in a hash table: a
   polymorphic-compare [Set] of boxed tuples made every apply O(m log m)
   with a constant large enough to dominate repair latency. *)
let encode n u v = if u <= v then (u * n) + v else (v * n) + u
let decode n e = (e / n, e mod n)

let edge_tbl g =
  let n = Graph.n g in
  let t = Hashtbl.create (1 + (2 * Graph.m g)) in
  Graph.fold_edges
    (fun () u v ->
      Hashtbl.replace t (encode n u v) ();
      ())
    () g;
  t

let after_tbl g ops =
  let n = Graph.n g in
  let t = edge_tbl g in
  List.iter
    (fun op ->
      match op with
      | Add_edge (u, v) ->
          check_edge n u v;
          Hashtbl.replace t (encode n u v) ()
      | Remove_edge (u, v) ->
          check_edge n u v;
          Hashtbl.remove t (encode n u v)
      | Node_down u ->
          check_vertex n u;
          let doomed =
            Hashtbl.fold
              (fun e () acc ->
                let a, b = decode n e in
                if a = u || b = u then e :: acc else acc)
              t []
          in
          List.iter (Hashtbl.remove t) doomed
      | Node_up (u, links) ->
          List.iter
            (fun v ->
              check_edge n u v;
              Hashtbl.replace t (encode n u v) ())
            links)
    ops;
  t

(* Sorting the int encodings with [Int.compare] is the lexicographic
   pair order, without polymorphic compare on tuples. *)
let pairs_of_tbl n t =
  Hashtbl.fold (fun e () acc -> e :: acc) t []
  |> List.sort Int.compare
  |> List.map (decode n)

let only n t t' =
  Hashtbl.fold (fun e () acc -> if Hashtbl.mem t' e then acc else e :: acc) t []
  |> List.sort Int.compare
  |> List.map (decode n)

let effect g ops =
  let n = Graph.n g in
  let before = edge_tbl g in
  let after = after_tbl g ops in
  (only n after before, only n before after)

let apply g ops =
  let n = Graph.n g in
  let before = edge_tbl g in
  let after = after_tbl g ops in
  let unchanged =
    Hashtbl.length before = Hashtbl.length after
    && Hashtbl.fold (fun e () ok -> ok && Hashtbl.mem before e) after true
  in
  if unchanged then g else Graph.make ~n (pairs_of_tbl n after)

let diff g g' =
  if Graph.n g <> Graph.n g' then
    invalid_arg
      (Printf.sprintf "Delta.diff: vertex counts differ (%d vs %d)" (Graph.n g)
         (Graph.n g'));
  let n = Graph.n g in
  let before = edge_tbl g and after = edge_tbl g' in
  List.map (fun (u, v) -> Remove_edge (u, v)) (only n before after)
  @ List.map (fun (u, v) -> Add_edge (u, v)) (only n after before)

let touched ~added ~removed =
  let m = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace m u ();
      Hashtbl.replace m v ())
    added;
  List.iter
    (fun (u, v) ->
      Hashtbl.replace m u ();
      Hashtbl.replace m v ())
    removed;
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) m [])

(* ------------------------------------------------------------------ *)
(* delta files *)

let parse text =
  let ops = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let toks =
        String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
        |> List.filter (( <> ) "")
      in
      let bad why = failwith (Printf.sprintf "Delta.parse: line %d: %s" (i + 1) why) in
      let int s =
        match int_of_string_opt s with
        | Some v -> v
        | None -> bad ("not an integer: " ^ s)
      in
      match toks with
      | [] -> ()
      | [ "add"; u; v ] -> ops := Add_edge (int u, int v) :: !ops
      | [ "remove"; u; v ] -> ops := Remove_edge (int u, int v) :: !ops
      | [ "down"; u ] -> ops := Node_down (int u) :: !ops
      | "up" :: u :: links when links <> [] ->
          ops := Node_up (int u, List.map int links) :: !ops
      | "add" :: _ -> bad "expected: add U V"
      | "remove" :: _ -> bad "expected: remove U V"
      | "down" :: _ -> bad "expected: down U"
      | "up" :: _ -> bad "expected: up U V1 [V2 ...]"
      | kw :: _ -> bad ("unknown directive: " ^ kw))
    lines;
  List.rev !ops

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let pp_op fmt = function
  | Add_edge (u, v) -> Format.fprintf fmt "add %d %d" u v
  | Remove_edge (u, v) -> Format.fprintf fmt "remove %d %d" u v
  | Node_down u -> Format.fprintf fmt "down %d" u
  | Node_up (u, links) ->
      Format.fprintf fmt "up %d%t" u (fun fmt ->
          List.iter (fun v -> Format.fprintf fmt " %d" v) links)

let to_string ops =
  let buf = Buffer.create (16 * (1 + List.length ops)) in
  List.iter
    (fun op ->
      (match op with
      | Add_edge (u, v) -> Buffer.add_string buf (Printf.sprintf "add %d %d" u v)
      | Remove_edge (u, v) -> Buffer.add_string buf (Printf.sprintf "remove %d %d" u v)
      | Node_down u -> Buffer.add_string buf (Printf.sprintf "down %d" u)
      | Node_up (u, links) ->
          Buffer.add_string buf (Printf.sprintf "up %d" u);
          List.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v)) links);
      Buffer.add_char buf '\n')
    ops;
  Buffer.contents buf
