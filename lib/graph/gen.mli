(** Combinatorial graph generators.

    Deterministic families for tests and adversarial experiments, plus
    seeded random families ({!erdos_renyi}, {!random_tree}, ...). The
    geometric families (unit disk / unit ball graphs) live in
    [Rs_geometry]. *)

val empty : int -> Graph.t
(** [empty n]: n isolated vertices. *)

val path_graph : int -> Graph.t
(** Path 0-1-...-(n-1). *)

val cycle : int -> Graph.t
(** Cycle on n >= 3 vertices. *)

val complete : int -> Graph.t

val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b]: left part [0..a-1], right [a..a+b-1]. *)

val star : int -> Graph.t
(** [star n]: center 0 joined to [1..n-1]. *)

val grid : int -> int -> Graph.t
(** [grid rows cols], vertex (r, c) = r*cols + c. *)

val torus : int -> int -> Graph.t
(** Grid with wrap-around rows/columns (rows, cols >= 3). *)

val hypercube : int -> Graph.t
(** [hypercube d]: 2^d vertices, edges between ids at Hamming
    distance 1. *)

val petersen : unit -> Graph.t

val theta : int -> int -> Graph.t
(** [theta k len]: two hub vertices 0 and 1 joined by [k] internally
    disjoint paths of [len] internal vertices each — the canonical
    k-connected pair ([d^k(0,1) = k*(len+1)]). Requires len >= 1. *)

val erdos_renyi : Rand.t -> int -> float -> Graph.t
(** G(n, p). *)

val random_tree : Rand.t -> int -> Graph.t
(** Uniform-ish random tree: vertex i >= 1 attaches to a uniform
    earlier vertex. *)

val random_connected : Rand.t -> int -> float -> Graph.t
(** G(n, p) unioned with a random tree: connected by construction,
    keeps ER local structure for p above the threshold. *)

val barbell : int -> Graph.t
(** Two [complete n] cliques joined by a single bridge edge. *)

val wheel : int -> Graph.t
(** [wheel n]: hub 0 joined to a cycle [1..n-1] (n >= 4). *)

val circulant : int -> int list -> Graph.t
(** [circulant n offsets]: vertex i joined to i±o mod n for each
    offset. Offsets must be in [1, n/2]. A cheap bounded-degree
    expander-ish family. *)

val binary_tree : int -> Graph.t
(** Complete binary tree with n vertices (vertex i's children are
    2i+1, 2i+2). *)

val caterpillar : int -> int -> Graph.t
(** [caterpillar spine legs]: a path of [spine] vertices, each with
    [legs] pendant leaves — a high-degree tree stressing the log Delta
    factors. *)

val gnm : Rand.t -> int -> int -> Graph.t
(** Uniform random graph with exactly [m] distinct edges (m at most
    n(n-1)/2). *)

val random_regular : Rand.t -> int -> int -> Graph.t
(** [random_regular rand n d]: d-regular random graph by the pairing
    model with local stub-swap repair (approximately uniform,
    degree-exact). [n * d] must be even, [d < n]. *)
