(* Vertex split: x_in = 2x, x_out = 2x+1. Source is s_out, sink t_in. *)

let build_network g s t =
  let n = Graph.n g in
  let net = Mincost_flow.create (2 * n) in
  for x = 0 to n - 1 do
    if x <> s && x <> t then
      Mincost_flow.add_arc net ~src:(2 * x) ~dst:((2 * x) + 1) ~cap:1 ~cost:0
  done;
  Graph.iter_edges
    (fun a b ->
      Mincost_flow.add_arc net ~src:((2 * a) + 1) ~dst:(2 * b) ~cap:1 ~cost:1;
      Mincost_flow.add_arc net ~src:((2 * b) + 1) ~dst:(2 * a) ~cap:1 ~cost:1)
    g;
  net

let check_pair g s t =
  if s = t then invalid_arg "Disjoint_paths: s = t";
  if s < 0 || s >= Graph.n g || t < 0 || t >= Graph.n g then
    invalid_arg "Disjoint_paths: vertex out of range"

let dk_profile g ~kmax s t =
  check_pair g s t;
  if kmax < 1 then invalid_arg "Disjoint_paths.dk_profile: kmax < 1";
  let net = build_network g s t in
  let units = Mincost_flow.min_cost_units net ~s:((2 * s) + 1) ~t_:(2 * t) ~max_units:kmax in
  let acc = ref 0 in
  Array.of_list (List.map (fun c -> acc := !acc + c; !acc) units)

let dk g ~k s t =
  let profile = dk_profile g ~kmax:k s t in
  if Array.length profile >= k then Some profile.(k - 1) else None

let max_disjoint g s t =
  check_pair g s t;
  let bound = min (Graph.degree g s) (Graph.degree g t) in
  if bound = 0 then 0
  else
    let profile = dk_profile g ~kmax:bound s t in
    Array.length profile

let min_sum_paths g ~k s t =
  check_pair g s t;
  if k < 1 then invalid_arg "Disjoint_paths.min_sum_paths: k < 1";
  let net = build_network g s t in
  let units = Mincost_flow.min_cost_units net ~s:((2 * s) + 1) ~t_:(2 * t) ~max_units:k in
  if List.length units < k then None
  else begin
    (* Decompose the flow into k s-t paths. Edge arcs with flow give a
       successor multimap on out-nodes; vertex arcs have cap 1 so each
       internal vertex appears on at most one path. *)
    let succ : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (src, dst, _flow) ->
        (* only edge arcs (out -> in) matter; vertex arcs are in -> out *)
        if src land 1 = 1 && dst land 1 = 0 then
          Hashtbl.replace succ src (dst :: (Option.value ~default:[] (Hashtbl.find_opt succ src))))
      (Mincost_flow.arcs_with_flow net);
    let take_succ v =
      match Hashtbl.find_opt succ v with
      | Some (x :: rest) ->
          Hashtbl.replace succ v rest;
          Some x
      | Some [] | None -> None
    in
    let walk () =
      let rec go v acc =
        (* v is a vertex id; acc is the reversed path so far *)
        if v = t then List.rev (t :: acc)
        else
          match take_succ ((2 * v) + 1) with
          | Some win -> go (win / 2) (v :: acc)
          | None -> invalid_arg "Disjoint_paths: broken flow decomposition"
      in
      go s []
    in
    Some (List.init k (fun _ -> walk ()))
  end
