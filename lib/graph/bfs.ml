let no_radius = max_int

(* Expansion hook: BFS dominates every construction's cost, so traversal
   totals go to the metrics registry. One enabled-check per traversal
   (not per dequeue) keeps the disabled path free. *)
let c_runs = Rs_obs.Obs.counter "bfs/runs"
let c_expansions = Rs_obs.Obs.counter "bfs/expansions"

let record_traversal expanded =
  if Rs_obs.Obs.enabled () then begin
    Rs_obs.Obs.incr c_runs;
    Rs_obs.Obs.add c_expansions expanded
  end

let dist_adj ?(radius = no_radius) adj src =
  let n = Array.length adj in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  dist.(src) <- 0;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) in
    if du < radius then
      Array.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- du + 1;
            queue.(!tail) <- v;
            incr tail
          end)
        adj.(u)
  done;
  record_traversal !head;
  dist

let dist ?radius g src =
  dist_adj ?radius (Array.init (Graph.n g) (Graph.neighbors g)) src

let dist_pair g u v =
  if u = v then 0
  else begin
    let n = Graph.n g in
    let dist = Array.make n (-1) in
    let queue = Array.make n 0 in
    dist.(u) <- 0;
    queue.(0) <- u;
    let head = ref 0 and tail = ref 1 in
    let found = ref (-1) in
    while !found < 0 && !head < !tail do
      let x = queue.(!head) in
      incr head;
      let dx = dist.(x) in
      Array.iter
        (fun y ->
          if dist.(y) < 0 then begin
            dist.(y) <- dx + 1;
            if y = v then found := dx + 1;
            queue.(!tail) <- y;
            incr tail
          end)
        (Graph.neighbors g x)
    done;
    record_traversal !head;
    !found
  end

let parents_adj ?(radius = no_radius) adj src =
  let n = Array.length adj in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let queue = Array.make n 0 in
  dist.(src) <- 0;
  parent.(src) <- src;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) in
    if du < radius then
      (* adjacency arrays are sorted, so the first discoverer of [v] is
         the smallest-id vertex at distance d(v)-1: deterministic tree. *)
      Array.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- du + 1;
            parent.(v) <- u;
            queue.(!tail) <- v;
            incr tail
          end)
        adj.(u)
  done;
  record_traversal !head;
  parent

let parents ?radius g src =
  parents_adj ?radius (Array.init (Graph.n g) (Graph.neighbors g)) src

let ball g u r =
  let d = dist ~radius:r g u in
  let acc = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if d.(v) >= 0 && d.(v) <= r then acc := v :: !acc
  done;
  let a = Array.of_list !acc in
  Array.sort (fun a b -> compare (d.(a), a) (d.(b), b)) a;
  a

let sphere g u r =
  let d = dist ~radius:r g u in
  let acc = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if d.(v) = r then acc := v :: !acc
  done;
  Array.of_list !acc

let ecc g u =
  let d = dist g u in
  Array.fold_left (fun acc x -> max acc x) 0 d

let diameter g =
  let n = Graph.n g in
  if n <= 1 then 0
  else begin
    let d0 = dist g 0 in
    if Array.exists (fun x -> x < 0) d0 then -1
    else
      let best = ref 0 in
      for u = 0 to n - 1 do
        best := max !best (ecc g u)
      done;
      !best
  end

let augmented_dist g h_adj u =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  dist.(u) <- 0;
  let tail = ref 0 in
  Array.iter
    (fun v ->
      if dist.(v) < 0 then begin
        dist.(v) <- 1;
        queue.(!tail) <- v;
        incr tail
      end)
    (Graph.neighbors g u);
  let head = ref 0 in
  while !head < !tail do
    let x = queue.(!head) in
    incr head;
    let dx = dist.(x) in
    Array.iter
      (fun y ->
        if dist.(y) < 0 then begin
          dist.(y) <- dx + 1;
          queue.(!tail) <- y;
          incr tail
        end)
      h_adj.(x)
  done;
  record_traversal !head;
  dist
