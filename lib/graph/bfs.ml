let no_radius = max_int

(* Expansion hook: BFS dominates every construction's cost, so traversal
   totals go to the metrics registry. One enabled-check per traversal
   (not per dequeue) keeps the disabled path free. *)
let c_runs = Rs_obs.Obs.counter "bfs/runs"
let c_expansions = Rs_obs.Obs.counter "bfs/expansions"
let h_visited = Rs_obs.Obs.histogram "bfs/visited"

let record_traversal expanded =
  if Rs_obs.Obs.enabled () then begin
    Rs_obs.Obs.incr c_runs;
    Rs_obs.Obs.add c_expansions expanded;
    (* per-traversal reach distribution: p50/p99 of how much of the
       graph each BFS actually touches *)
    Rs_obs.Obs.observe h_visited (float_of_int expanded)
  end

module Marks = struct
  type t = { mutable stamp : int array; mutable gen : int }

  let create () = { stamp = [||]; gen = 0 }

  let clear t = t.gen <- t.gen + 1

  let ensure t n =
    if Array.length t.stamp < n then begin
      (* grow geometrically so repeated use on growing graphs stays
         amortized O(1); stale stamps are disarmed by the generation *)
      let cap = max n (max 16 (2 * Array.length t.stamp)) in
      let fresh = Array.make cap 0 in
      Array.blit t.stamp 0 fresh 0 (Array.length t.stamp);
      t.stamp <- fresh
    end

  let set t v =
    ensure t (v + 1);
    t.stamp.(v) <- t.gen

  let mem t v = v < Array.length t.stamp && t.stamp.(v) = t.gen
end

module Scratch = struct
  (* Reusable BFS state. [stamp.(v) = gen] marks v as reached by the
     most recent run, so resetting between runs is one integer bump —
     O(touched) work total, never O(n). [queue.(0 .. count-1)] keeps the
     visit order of the last run. [marks] is a general-purpose vertex
     set for algorithms layered on a traversal (never touched by the
     BFS itself). *)
  type t = {
    mutable dist : int array;
    mutable parent : int array;
    mutable queue : int array;
    mutable stamp : int array;
    mutable gen : int;
    mutable count : int;
    marks : Marks.t;
  }

  let create () =
    {
      dist = [||];
      parent = [||];
      queue = [||];
      stamp = [||];
      gen = 0;
      count = 0;
      marks = Marks.create ();
    }

  let ensure s n =
    if Array.length s.stamp < n then begin
      let cap = max n (max 16 (2 * Array.length s.stamp)) in
      s.dist <- Array.make cap 0;
      s.parent <- Array.make cap 0;
      s.queue <- Array.make cap 0;
      let fresh = Array.make cap 0 in
      Array.blit s.stamp 0 fresh 0 (Array.length s.stamp);
      s.stamp <- fresh
    end

  let marks s = s.marks
  let visited_count s = s.count
  let visited s i = s.queue.(i)
  let reached s v = v < Array.length s.stamp && s.stamp.(v) = s.gen
  let dist s v = if reached s v then s.dist.(v) else -1
  let parent s v = if reached s v then s.parent.(v) else -1

  let iter_visited s f =
    for i = 0 to s.count - 1 do
      f s.queue.(i)
    done

  (* Single traversal computing distances and deterministic parents at
     once. The canonical parent of [v] is its smallest-id neighbor at
     distance d(v)-1 — a property of the graph alone, independent of
     queue order, so any traversal schedule (per-root BFS here, the
     bit-parallel batched engine in [Msbfs]) reconstructs the same
     parents. The first discoverer is only a candidate: every vertex
     at d(v)-1 is dequeued and either discovers [v] or lowers its
     parent in the [else] branch, so the minimum is always reached. *)
  let run ?(radius = no_radius) s g src =
    ensure s (Graph.n g);
    s.gen <- s.gen + 1;
    let gen = s.gen in
    let dist = s.dist and parent = s.parent and queue = s.queue and stamp = s.stamp in
    let off, nbr = Graph.csr g in
    stamp.(src) <- gen;
    dist.(src) <- 0;
    parent.(src) <- src;
    queue.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = dist.(u) in
      if du < radius then
        for i = off.(u) to off.(u + 1) - 1 do
          let v = nbr.(i) in
          if stamp.(v) <> gen then begin
            stamp.(v) <- gen;
            dist.(v) <- du + 1;
            parent.(v) <- u;
            queue.(!tail) <- v;
            incr tail
          end
          else if dist.(v) = du + 1 && u < parent.(v) then parent.(v) <- u
        done
    done;
    s.count <- !tail;
    record_traversal !tail

  let run_adj ?(radius = no_radius) s adj src =
    ensure s (Array.length adj);
    s.gen <- s.gen + 1;
    let gen = s.gen in
    let dist = s.dist and parent = s.parent and queue = s.queue and stamp = s.stamp in
    stamp.(src) <- gen;
    dist.(src) <- 0;
    parent.(src) <- src;
    queue.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = dist.(u) in
      if du < radius then
        Array.iter
          (fun v ->
            if stamp.(v) <> gen then begin
              stamp.(v) <- gen;
              dist.(v) <- du + 1;
              parent.(v) <- u;
              queue.(!tail) <- v;
              incr tail
            end
            else if dist.(v) = du + 1 && u < parent.(v) then parent.(v) <- u)
          adj.(u)
    done;
    s.count <- !tail;
    record_traversal !tail

  (* d_{H_u}(u, ·): source at 0, its G-neighbors seeded at distance 1,
     expansion through [h_adj] alone (see [augmented_dist]). *)
  let run_augmented s g h_adj src =
    ensure s (Graph.n g);
    s.gen <- s.gen + 1;
    let gen = s.gen in
    let dist = s.dist and parent = s.parent and queue = s.queue and stamp = s.stamp in
    stamp.(src) <- gen;
    dist.(src) <- 0;
    parent.(src) <- src;
    let tail = ref 0 in
    Graph.iter_neighbors g src (fun v ->
        if stamp.(v) <> gen then begin
          stamp.(v) <- gen;
          dist.(v) <- 1;
          parent.(v) <- src;
          queue.(!tail) <- v;
          incr tail
        end);
    let head = ref 0 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = dist.(u) in
      Array.iter
        (fun v ->
          if stamp.(v) <> gen then begin
            stamp.(v) <- gen;
            dist.(v) <- du + 1;
            parent.(v) <- u;
            queue.(!tail) <- v;
            incr tail
          end)
        h_adj.(u)
    done;
    (* src is not in the queue; count only covers queued vertices *)
    s.count <- !tail;
    record_traversal !tail
end

(* Domain-local scratch backing the array-returning convenience API:
   each call allocates only its result, never the traversal state (and
   never rebuilds the adjacency — BFS runs straight over the CSR). *)
let dls_scratch = Domain.DLS.new_key (fun () -> Scratch.create ())

let dist ?radius g src =
  let s = Domain.DLS.get dls_scratch in
  Scratch.run ?radius s g src;
  let out = Array.make (Graph.n g) (-1) in
  Scratch.iter_visited s (fun v -> out.(v) <- s.Scratch.dist.(v));
  out

let parents ?radius g src =
  let s = Domain.DLS.get dls_scratch in
  Scratch.run ?radius s g src;
  let out = Array.make (Graph.n g) (-1) in
  Scratch.iter_visited s (fun v -> out.(v) <- s.Scratch.parent.(v));
  out

let dist_adj ?(radius = no_radius) adj src =
  let n = Array.length adj in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  dist.(src) <- 0;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) in
    if du < radius then
      Array.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- du + 1;
            queue.(!tail) <- v;
            incr tail
          end)
        adj.(u)
  done;
  record_traversal !head;
  dist

let parents_adj ?(radius = no_radius) adj src =
  let n = Array.length adj in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let queue = Array.make n 0 in
  dist.(src) <- 0;
  parent.(src) <- src;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) in
    if du < radius then
      (* canonical parent = smallest-id neighbor at distance d(v)-1;
         see [Scratch.run] for why the [else] branch reaches it *)
      Array.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- du + 1;
            parent.(v) <- u;
            queue.(!tail) <- v;
            incr tail
          end
          else if dist.(v) = du + 1 && u < parent.(v) then parent.(v) <- u)
        adj.(u)
  done;
  record_traversal !head;
  parent

let dist_pair ?(radius = no_radius) g u v =
  if u = v then begin
    (* the degenerate traversal still counts one bfs/run so callers
       alternating pair queries see consistent metrics *)
    record_traversal 0;
    0
  end
  else begin
    let s = Domain.DLS.get dls_scratch in
    Scratch.ensure s (Graph.n g);
    s.Scratch.gen <- s.Scratch.gen + 1;
    let gen = s.Scratch.gen in
    let dist = s.Scratch.dist
    and queue = s.Scratch.queue
    and stamp = s.Scratch.stamp in
    let off, nbr = Graph.csr g in
    stamp.(u) <- gen;
    dist.(u) <- 0;
    queue.(0) <- u;
    let head = ref 0 and tail = ref 1 in
    let found = ref (-1) in
    while !found < 0 && !head < !tail do
      let x = queue.(!head) in
      incr head;
      let dx = dist.(x) in
      if dx < radius then
        for i = off.(x) to off.(x + 1) - 1 do
          let y = nbr.(i) in
          if stamp.(y) <> gen then begin
            stamp.(y) <- gen;
            dist.(y) <- dx + 1;
            if y = v then found := dx + 1;
            queue.(!tail) <- y;
            incr tail
          end
        done
    done;
    s.Scratch.count <- 0;
    record_traversal !head;
    !found
  end

let ball g u r =
  let s = Domain.DLS.get dls_scratch in
  Scratch.run ~radius:r s g u;
  let a = Array.make (Scratch.visited_count s) 0 in
  Array.iteri (fun i _ -> a.(i) <- Scratch.visited s i) a;
  let d = s.Scratch.dist in
  Array.sort
    (fun a b ->
      let c = Int.compare d.(a) d.(b) in
      if c <> 0 then c else Int.compare a b)
    a;
  a

let sphere g u r =
  let s = Domain.DLS.get dls_scratch in
  Scratch.run ~radius:r s g u;
  let acc = ref [] in
  for i = Scratch.visited_count s - 1 downto 0 do
    let v = Scratch.visited s i in
    if s.Scratch.dist.(v) = r then acc := v :: !acc
  done;
  let a = Array.of_list !acc in
  Array.sort Int.compare a;
  a

let ecc g u =
  let s = Domain.DLS.get dls_scratch in
  Scratch.run s g u;
  let best = ref 0 in
  Scratch.iter_visited s (fun v -> best := max !best s.Scratch.dist.(v));
  !best

let diameter g =
  let n = Graph.n g in
  if n <= 1 then 0
  else begin
    let d0 = dist g 0 in
    if Array.exists (fun x -> x < 0) d0 then -1
    else
      let best = ref 0 in
      for u = 0 to n - 1 do
        best := max !best (ecc g u)
      done;
      !best
  end

let augmented_dist g h_adj u =
  let s = Domain.DLS.get dls_scratch in
  Scratch.run_augmented s g h_adj u;
  let out = Array.make (Graph.n g) (-1) in
  out.(u) <- 0;
  Scratch.iter_visited s (fun v -> out.(v) <- s.Scratch.dist.(v));
  out
