(** Static, simple, undirected, unweighted graphs.

    Vertices are the integers [0 .. n-1]. The structure is immutable
    once built: adjacency lists are sorted arrays and every edge has a
    canonical identifier in [0 .. m-1] (edges sorted lexicographically
    as [(min u v, max u v)] pairs). Self-loops are rejected; duplicate
    edges are merged at construction.

    Internally the adjacency is a flat CSR layout (an [n+1] offset
    array into one packed neighbor array, with edge ids carried in
    lock-step), so neighbor iteration is a contiguous scan and
    adjacency/edge-id probes are binary searches over a vertex's sorted
    range — no hashing on any hot path (see docs/PERFORMANCE.md).

    This is the substrate every remote-spanner algorithm operates on. *)

type t

val make : n:int -> (int * int) list -> t
(** [make ~n edges] builds a graph on vertices [0..n-1]. Raises
    [Invalid_argument] on out-of-range endpoints or self-loops.
    Duplicate edges (in either orientation) are merged. *)

val of_arrays : n:int -> (int * int) array -> t
(** Same as {!make} from an array (the array is not retained). *)

val of_canonical : ?validate:bool -> n:int -> (int * int) array -> t
(** [of_canonical ~n edges] builds a graph from edges that are already
    canonical ([u < v]), lexicographically sorted and duplicate-free —
    the order {!edges} returns them in — validating that contract in
    one O(m) pass instead of re-sorting. Raises [Invalid_argument] if
    any edge is out of range, non-canonical or out of order. This is
    the fast path binary snapshot loads take (see [Rs_store]); the
    array is not retained. [~validate:false] (default [true]) skips
    the contract check — only for callers that constructed the array
    themselves; feeding it unchecked external input is undefined. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val neighbors : t -> int -> int array
(** [neighbors g u] is the sorted array of neighbors of [u]. The array
    is owned by the graph and must not be mutated. The per-vertex
    arrays are memoized on first access (domain-safely); hot loops
    should prefer {!iter_neighbors} or {!csr}, which never build them. *)

val force_adj : t -> unit
(** Build the memoized per-vertex arrays behind {!neighbors} now, on
    the calling domain. Safe to call from any domain at any time, but
    calling it once before fanning work out to multiple domains avoids
    every worker redundantly paying the O(n + m) build on first access. *)

val degree : t -> int -> int

val max_degree : t -> int
(** Maximum degree, 0 for the empty graph. *)

val csr : t -> int array * int array
(** [csr g] is the raw [(offsets, packed_neighbors)] pair of the CSR
    layout: vertex [u]'s neighbors are
    [packed_neighbors.(offsets.(u) .. offsets.(u+1) - 1)], sorted
    increasing. Both arrays are owned by the graph and must not be
    mutated. Intended for allocation-free inner loops (BFS). *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors g u f] calls [f v] for every neighbor [v] of [u]
    in increasing order, without allocating. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** [fold_neighbors g u f acc] folds [f] over [u]'s neighbors in
    increasing order. *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] tests adjacency (symmetric; false for [u = v] and
    out-of-range endpoints). Binary search over [u]'s sorted CSR
    range: [O(log deg u)], allocation-free. *)

val edge_id : t -> int -> int -> int
(** [edge_id g u v] is the canonical id of edge [uv].
    Raises [Not_found] if absent. *)

val edge : t -> int -> int * int
(** [edge g id] is the canonical [(u, v)] pair, [u < v], of edge [id]. *)

val edges : t -> (int * int) array
(** All edges in canonical order. Owned by the graph; do not mutate. *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** [iter_edges f g] calls [f u v] with [u < v] for every edge. *)

val fold_edges : ('a -> int -> int -> 'a) -> 'a -> t -> 'a

val iter_vertices : (int -> unit) -> t -> unit

val fold_vertices : ('a -> int -> 'a) -> 'a -> t -> 'a

val induced : t -> int array -> t * int array
(** [induced g vs] is the sub-graph induced by the distinct vertex set
    [vs], with vertices renumbered [0..k-1] in the order of [vs];
    returns [(h, back)] where [back.(i)] is the original id of new
    vertex [i]. *)

val remove_vertex : t -> int -> t
(** [remove_vertex g u] deletes [u] and its incident edges, keeping the
    original numbering (vertex [u] becomes isolated). Used by
    fault-injection tests. *)

val union_edges : t -> (int * int) list -> t
(** [union_edges g es] is [g] with the extra edges added (same vertex
    set). *)

val equal : t -> t -> bool
(** Structural equality (same [n] and same edge set). *)

val pp : Format.formatter -> t -> unit
(** Debug printer: [n], [m] and the edge list. *)
