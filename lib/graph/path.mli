(** Simple paths as vertex sequences.

    A path is a non-empty list of vertices [v0; v1; ...; vl]; its
    length is [l] (number of edges). The disjoint-path machinery
    returns values of this type so that callers can independently check
    validity and disjointness. *)

type t = int list

val length : t -> int
(** Number of edges ([length [v] = 0]). Raises on the empty list. *)

val source : t -> int
val target : t -> int

val is_valid : Graph.t -> t -> bool
(** Every consecutive pair is an edge of the graph and no vertex
    repeats (simple path). *)

val is_valid_in : Edge_set.t -> t -> bool
(** Same, but every edge must belong to the edge set. *)

val internal : t -> int list
(** Internal vertices (all but the two endpoints). *)

val pairwise_disjoint : t list -> bool
(** True when the paths share no {e internal} vertex — the paper's
    notion of disjointness for k-connectivity (endpoints may and must
    coincide). *)

val concat : t -> t -> t
(** [concat p q] glues [p] ending at [x] with [q] starting at [x].
    Raises [Invalid_argument] when endpoints do not match. *)

val of_parents : int array -> int -> t
(** [of_parents parent v] reads the path root..v off a BFS parent array
    ({!Bfs.parents}). Raises [Invalid_argument] if [v] is unreached. *)

val pp : Format.formatter -> t -> unit
