let components g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let queue = Array.make n 0 in
  for s = 0 to n - 1 do
    if label.(s) < 0 then begin
      label.(s) <- s;
      queue.(0) <- s;
      let head = ref 0 and tail = ref 1 in
      while !head < !tail do
        let u = queue.(!head) in
        incr head;
        Array.iter
          (fun v ->
            if label.(v) < 0 then begin
              label.(v) <- s;
              queue.(!tail) <- v;
              incr tail
            end)
          (Graph.neighbors g u)
      done
    end
  done;
  label

let component_count g =
  let label = components g in
  let distinct = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace distinct l ()) label;
  Hashtbl.length distinct

let is_connected g = Graph.n g <= 1 || component_count g = 1

let pair_connectivity g s t = Disjoint_paths.max_disjoint g s t

let is_k_connected_pair g ~k s t =
  if k <= 0 then true
  else
    match Disjoint_paths.dk g ~k s t with Some _ -> true | None -> false

let min_degree g =
  if Graph.n g = 0 then 0
  else Graph.fold_vertices (fun acc u -> min acc (Graph.degree g u)) max_int g

(* Iterative lowpoint DFS computing articulation points and bridges in
   one pass. *)
let lowpoint_scan g =
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let parent = Array.make n (-1) in
  let is_cut = Array.make n false in
  let bridges = ref [] in
  let timer = ref 0 in
  for root = 0 to n - 1 do
    if disc.(root) < 0 then begin
      let root_children = ref 0 in
      (* explicit stack of (vertex, next neighbor index) *)
      let stack = ref [ (root, ref 0) ] in
      disc.(root) <- !timer;
      low.(root) <- !timer;
      incr timer;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (u, idx) :: rest ->
            let nbrs = Graph.neighbors g u in
            if !idx < Array.length nbrs then begin
              let v = nbrs.(!idx) in
              incr idx;
              if disc.(v) < 0 then begin
                parent.(v) <- u;
                if u = root then incr root_children;
                disc.(v) <- !timer;
                low.(v) <- !timer;
                incr timer;
                stack := (v, ref 0) :: !stack
              end
              else if v <> parent.(u) then low.(u) <- min low.(u) disc.(v)
            end
            else begin
              (* retreat from u *)
              stack := rest;
              let p = parent.(u) in
              if p >= 0 then begin
                low.(p) <- min low.(p) low.(u);
                if low.(u) > disc.(p) then
                  bridges := (min p u, max p u) :: !bridges;
                if p <> root && low.(u) >= disc.(p) then is_cut.(p) <- true
              end
            end
      done;
      if !root_children >= 2 then is_cut.(root) <- true
    end
  done;
  (is_cut, List.sort compare !bridges)

let cut_vertices g =
  let is_cut, _ = lowpoint_scan g in
  let acc = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if is_cut.(v) then acc := v :: !acc
  done;
  !acc

let bridges g = snd (lowpoint_scan g)
