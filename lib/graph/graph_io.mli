(** Graph serialization: plain text and the binary [.rsg] format.

    Text format: first line "n m", then one "u v" pair per line. Lines
    starting with '#' are comments. Binary format ([.rsg]): magic
    "RSGRF001", u32 [n], u32 [m], [m] little-endian (u32, u32)
    canonical edge pairs, trailing u32 CRC-32 over everything after
    the magic — the Snapshot GRAPH section ([Rs_store]) promoted to a
    standalone file, so a 10^6-node graph loads in tens of
    milliseconds instead of re-parsing text. {!load} auto-detects the
    format by the magic bytes. Used by the [rspan] CLI. *)

val to_string : Graph.t -> string
val of_string : string -> Graph.t
(** Raises [Failure] with a one-line, line-numbered diagnostic on
    malformed input — including edge lines beyond the declared [m]
    (trailing garbage) and duplicate edges in either orientation
    (which [Graph.make] would otherwise silently merge, leaving fewer
    edges than the header promised). *)

val binary_magic : string
(** ["RSGRF001"], the 8 bytes every binary graph file starts with. *)

val to_binary_string : Graph.t -> string
val of_binary_string : string -> Graph.t
(** Raises [Failure] with a one-line diagnostic on bad magic, length
    mismatch, checksum mismatch or a non-canonical edge array. *)

val is_binary : string -> bool
(** Does this byte string start with {!binary_magic}? *)

val save : string -> Graph.t -> unit
val load : string -> Graph.t
(** [load path] reads either format, sniffing the magic bytes. *)

val write_binary : string -> Graph.t -> unit
val read_binary : string -> Graph.t

val to_dot : ?highlight:Edge_set.t -> ?labels:(int -> string) -> Graph.t -> string
(** Graphviz export. Edges in [highlight] are drawn bold red (spanner
    edges); the rest gray. *)
