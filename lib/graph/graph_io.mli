(** Plain-text serialization of graphs.

    Format: first line "n m", then one "u v" pair per line. Lines
    starting with '#' are comments. Used by the [rspan] CLI. *)

val to_string : Graph.t -> string
val of_string : string -> Graph.t
(** Raises [Failure] with a one-line, line-numbered diagnostic on
    malformed input — including edge lines beyond the declared [m]
    (trailing garbage) and duplicate edges in either orientation
    (which [Graph.make] would otherwise silently merge, leaving fewer
    edges than the header promised). *)

val save : string -> Graph.t -> unit
val load : string -> Graph.t

val to_dot : ?highlight:Edge_set.t -> ?labels:(int -> string) -> Graph.t -> string
(** Graphviz export. Edges in [highlight] are drawn bold red (spanner
    edges); the rest gray. *)
