(** Plain-text serialization of graphs.

    Format: first line "n m", then one "u v" pair per line. Lines
    starting with '#' are comments. Used by the [rspan] CLI. *)

val to_string : Graph.t -> string
val of_string : string -> Graph.t
(** Raises [Failure] on malformed input. *)

val save : string -> Graph.t -> unit
val load : string -> Graph.t

val to_dot : ?highlight:Edge_set.t -> ?labels:(int -> string) -> Graph.t -> string
(** Graphviz export. Edges in [highlight] are drawn bold red (spanner
    edges); the rest gray. *)
