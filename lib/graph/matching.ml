let max_matching ~left ~right edges =
  let adj = Array.make left [] in
  List.iter
    (fun (l, r) ->
      if l < 0 || l >= left || r < 0 || r >= right then
        invalid_arg "Matching.max_matching: vertex out of range";
      adj.(l) <- r :: adj.(l))
    edges;
  let match_r = Array.make right (-1) in
  let visited = Array.make right false in
  let rec try_kuhn l =
    List.exists
      (fun r ->
        if visited.(r) then false
        else begin
          visited.(r) <- true;
          if match_r.(r) < 0 || try_kuhn match_r.(r) then begin
            match_r.(r) <- l;
            true
          end
          else false
        end)
      adj.(l)
  in
  for l = 0 to left - 1 do
    Array.fill visited 0 right false;
    ignore (try_kuhn l)
  done;
  let pairs = ref [] in
  for r = right - 1 downto 0 do
    if match_r.(r) >= 0 then pairs := (match_r.(r), r) :: !pairs
  done;
  !pairs

let matching_size ~left ~right edges = List.length (max_matching ~left ~right edges)
