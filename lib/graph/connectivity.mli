(** Connectivity predicates and components. *)

val components : Graph.t -> int array
(** Component label per vertex (labels are the smallest vertex id in
    each component). *)

val component_count : Graph.t -> int

val is_connected : Graph.t -> bool
(** True for graphs with <= 1 vertex. *)

val pair_connectivity : Graph.t -> int -> int -> int
(** Local vertex connectivity between two distinct vertices: the
    maximum number of internally disjoint paths (Menger). *)

val is_k_connected_pair : Graph.t -> k:int -> int -> int -> bool
(** [is_k_connected_pair g ~k s t]: do k internally disjoint s-t paths
    exist? *)

val min_degree : Graph.t -> int

val cut_vertices : Graph.t -> int list
(** Articulation points (Tarjan/Hopcroft lowpoint DFS), sorted.
    Relevant to the edge-connectivity extension: the bow-tie
    counterexample shows the vertex-based constructions only need
    repair around cut vertices (experiment E13). *)

val bridges : Graph.t -> (int * int) list
(** Bridge edges (canonical order, sorted): edges whose removal
    disconnects their component. *)
