(* Bit-parallel multi-source BFS: up to [width] roots advance together,
   one machine word of "seen" bits per vertex. Each frontier sweep
   expands the union of all per-root frontiers, so overlapping balls
   (spatially close roots) share every neighbor scan their traversals
   have in common — the per-root Scratch loop scans them once per
   root. Width is 62, not 64: OCaml ints are 63-bit and staying clear
   of the sign bit keeps every mask test a plain [<> 0]. *)

let width = 62

type t = {
  mutable seen : int array; (* bit k set: vertex reached by root k *)
  mutable cur : int array; (* bits of the current frontier *)
  mutable nxt : int array; (* bits of the next frontier *)
  mutable front : int array; (* vertices with cur bits, each once *)
  mutable nfront : int;
  mutable fnext : int array;
  mutable nfnext : int;
  mutable touched : int array; (* vertices with seen bits, for O(ball) reset *)
  mutable ntouched : int;
  mutable srcs : int array;
  mutable nsrc : int;
  (* per-slot results: visit order grouped by level (BFS is
     level-synchronous, so discovery order is level order) *)
  out : int array array;
  nout : int array;
  lvl : int array array; (* lvl.(s).(d) = end index of level d in out.(s) *)
  nlvl : int array;
}

let create () =
  {
    seen = [||];
    cur = [||];
    nxt = [||];
    front = [||];
    nfront = 0;
    fnext = [||];
    nfnext = 0;
    touched = [||];
    ntouched = 0;
    srcs = [||];
    nsrc = 0;
    out = Array.make width [||];
    nout = Array.make width 0;
    lvl = Array.make width [||];
    nlvl = Array.make width 0;
  }

let ensure t n =
  if Array.length t.seen < n then begin
    let cap = max n (max 16 (2 * Array.length t.seen)) in
    t.seen <- Array.make cap 0;
    t.cur <- Array.make cap 0;
    t.nxt <- Array.make cap 0;
    t.front <- Array.make cap 0;
    t.fnext <- Array.make cap 0;
    t.touched <- Array.make cap 0
  end

let push_out t s v =
  let a = t.out.(s) in
  let i = t.nout.(s) in
  let a =
    if i >= Array.length a then begin
      let f = Array.make (max 16 (2 * (i + 1))) 0 in
      Array.blit a 0 f 0 i;
      t.out.(s) <- f;
      f
    end
    else a
  in
  a.(i) <- v;
  t.nout.(s) <- i + 1

let push_lvl t s =
  let a = t.lvl.(s) in
  let i = t.nlvl.(s) in
  let a =
    if i >= Array.length a then begin
      let f = Array.make (max 8 (2 * (i + 1))) 0 in
      Array.blit a 0 f 0 i;
      t.lvl.(s) <- f;
      f
    end
    else a
  in
  a.(i) <- t.nout.(s);
  t.nlvl.(s) <- i + 1

(* trailing-zero count of a non-zero 62-bit mask, 6 branches *)
let ntz x =
  let n = ref 0 and x = ref x in
  if !x land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    x := !x lsr 32
  end;
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

let no_radius = max_int

let run ?(radius = no_radius) t g srcs =
  let k = Array.length srcs in
  if k > width then invalid_arg "Msbfs.run: more sources than width";
  ensure t (Graph.n g);
  (* O(previous balls) reset, never O(n) *)
  for i = 0 to t.ntouched - 1 do
    let v = t.touched.(i) in
    t.seen.(v) <- 0;
    t.cur.(v) <- 0;
    t.nxt.(v) <- 0
  done;
  t.ntouched <- 0;
  t.nsrc <- k;
  if Array.length t.srcs < k then t.srcs <- Array.make (max 16 width) 0;
  Array.blit srcs 0 t.srcs 0 k;
  for s = 0 to k - 1 do
    t.nout.(s) <- 0;
    t.nlvl.(s) <- 0
  done;
  t.nfront <- 0;
  let seen = t.seen and cur = t.cur in
  for s = 0 to k - 1 do
    let src = srcs.(s) in
    if seen.(src) = 0 then begin
      t.touched.(t.ntouched) <- src;
      t.ntouched <- t.ntouched + 1;
      t.front.(t.nfront) <- src;
      t.nfront <- t.nfront + 1
    end;
    let bit = 1 lsl s in
    seen.(src) <- seen.(src) lor bit;
    cur.(src) <- cur.(src) lor bit;
    push_out t s src
  done;
  for s = 0 to k - 1 do
    push_lvl t s
  done;
  let off, nbr = Graph.csr g in
  let d = ref 0 in
  while t.nfront > 0 && !d < radius do
    t.nfnext <- 0;
    let cur = t.cur and nxt = t.nxt and seen = t.seen in
    for i = 0 to t.nfront - 1 do
      let u = t.front.(i) in
      let mask = cur.(u) in
      cur.(u) <- 0;
      for j = off.(u) to off.(u + 1) - 1 do
        let v = nbr.(j) in
        let b = mask land lnot seen.(v) in
        if b <> 0 then begin
          if seen.(v) = 0 then begin
            t.touched.(t.ntouched) <- v;
            t.ntouched <- t.ntouched + 1
          end;
          if nxt.(v) = 0 then begin
            t.fnext.(t.nfnext) <- v;
            t.nfnext <- t.nfnext + 1
          end;
          seen.(v) <- seen.(v) lor b;
          nxt.(v) <- nxt.(v) lor b;
          let rem = ref b in
          while !rem <> 0 do
            let s = ntz !rem in
            rem := !rem land (!rem - 1);
            push_out t s v
          done
        end
      done
    done;
    let tmp = t.front in
    t.front <- t.fnext;
    t.fnext <- tmp;
    t.nfront <- t.nfnext;
    let tmp = t.cur in
    t.cur <- t.nxt;
    t.nxt <- tmp;
    incr d;
    if t.nfront > 0 then
      for s = 0 to k - 1 do
        push_lvl t s
      done
  done;
  (* metric parity with the per-root engine: one bfs/runs tick and one
     bfs/expansions contribution of |ball| per slot *)
  for s = 0 to k - 1 do
    Bfs.record_traversal t.nout.(s)
  done

let n_sources t = t.nsrc

let source t s =
  if s < 0 || s >= t.nsrc then invalid_arg "Msbfs.source: no such slot";
  t.srcs.(s)

let visited_count t s = t.nout.(s)

let iter_visited t s f =
  let out = t.out.(s) and lvl = t.lvl.(s) in
  let start = ref 0 in
  for d = 0 to t.nlvl.(s) - 1 do
    for i = !start to lvl.(d) - 1 do
      f out.(i) d
    done;
    start := lvl.(d)
  done

let levels t s ~max_dist =
  let out = t.out.(s) and lvl = t.lvl.(s) in
  Array.init (max_dist + 1) (fun d ->
      if d >= t.nlvl.(s) then [||]
      else begin
        let lo = if d = 0 then 0 else lvl.(d - 1) in
        let a = Array.sub out lo (lvl.(d) - lo) in
        Array.sort Int.compare a;
        a
      end)
