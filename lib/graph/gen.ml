let empty n = Graph.make ~n []

let path_graph n =
  Graph.make ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Graph.make ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v) :: !es
    done
  done;
  Graph.make ~n !es

let complete_bipartite a b =
  let es = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      es := (u, v) :: !es
    done
  done;
  Graph.make ~n:(a + b) !es

let star n =
  if n < 1 then invalid_arg "Gen.star: need n >= 1";
  Graph.make ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid rows cols =
  let id r c = (r * cols) + c in
  let es = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then es := (id r c, id r (c + 1)) :: !es;
      if r + 1 < rows then es := (id r c, id (r + 1) c) :: !es
    done
  done;
  Graph.make ~n:(rows * cols) !es

let torus rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Gen.torus: need rows, cols >= 3";
  let id r c = (r * cols) + c in
  let es = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      es := (id r c, id r ((c + 1) mod cols)) :: !es;
      es := (id r c, id ((r + 1) mod rows) c) :: !es
    done
  done;
  Graph.make ~n:(rows * cols) !es

let hypercube d =
  if d < 0 || d > 20 then invalid_arg "Gen.hypercube: dimension out of range";
  let n = 1 lsl d in
  let es = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to d - 1 do
      let v = u lxor (1 lsl b) in
      if u < v then es := (u, v) :: !es
    done
  done;
  Graph.make ~n !es

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  Graph.make ~n:10 (outer @ spokes @ inner)

let theta k len =
  if k < 1 || len < 1 then invalid_arg "Gen.theta: need k >= 1, len >= 1";
  let n = 2 + (k * len) in
  let es = ref [] in
  for p = 0 to k - 1 do
    let base = 2 + (p * len) in
    es := (0, base) :: !es;
    for i = 0 to len - 2 do
      es := (base + i, base + i + 1) :: !es
    done;
    es := (base + len - 1, 1) :: !es
  done;
  Graph.make ~n !es

let erdos_renyi rand n p =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rand.float rand 1.0 < p then es := (u, v) :: !es
    done
  done;
  Graph.make ~n !es

let random_tree rand n =
  Graph.make ~n (List.init (max 0 (n - 1)) (fun i -> (i + 1, Rand.int rand (i + 1))))

let random_connected rand n p =
  let tree = random_tree rand n in
  let er = erdos_renyi rand n p in
  Graph.union_edges er (Array.to_list (Graph.edges tree))

let barbell n =
  if n < 2 then invalid_arg "Gen.barbell: need n >= 2";
  let es = ref [ (n - 1, n) ] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v) :: !es;
      es := (n + u, n + v) :: !es
    done
  done;
  Graph.make ~n:(2 * n) !es

let wheel n =
  if n < 4 then invalid_arg "Gen.wheel: need n >= 4";
  let spokes = List.init (n - 1) (fun i -> (0, i + 1)) in
  let ring = (n - 1, 1) :: List.init (n - 2) (fun i -> (i + 1, i + 2)) in
  Graph.make ~n (spokes @ ring)

let circulant n offsets =
  if n < 3 then invalid_arg "Gen.circulant: need n >= 3";
  List.iter
    (fun o -> if o < 1 || o > n / 2 then invalid_arg "Gen.circulant: offset out of range")
    offsets;
  let es = ref [] in
  for i = 0 to n - 1 do
    List.iter (fun o -> es := (i, (i + o) mod n) :: !es) offsets
  done;
  Graph.make ~n !es

let binary_tree n =
  let es = ref [] in
  for i = 1 to n - 1 do
    es := (i, (i - 1) / 2) :: !es
  done;
  Graph.make ~n !es

let caterpillar spine legs =
  if spine < 1 || legs < 0 then invalid_arg "Gen.caterpillar: bad parameters";
  let n = spine * (1 + legs) in
  let es = ref [] in
  for i = 0 to spine - 2 do
    es := (i, i + 1) :: !es
  done;
  for i = 0 to spine - 1 do
    for l = 0 to legs - 1 do
      es := (i, spine + (i * legs) + l) :: !es
    done
  done;
  Graph.make ~n !es

let gnm rand n m =
  let all = n * (n - 1) / 2 in
  if m < 0 || m > all then invalid_arg "Gen.gnm: m out of range";
  let chosen = Hashtbl.create (2 * m) in
  while Hashtbl.length chosen < m do
    let u = Rand.int rand n and v = Rand.int rand n in
    if u <> v then begin
      let e = if u < v then (u, v) else (v, u) in
      if not (Hashtbl.mem chosen e) then Hashtbl.replace chosen e ()
    end
  done;
  Graph.make ~n (Hashtbl.fold (fun e () acc -> e :: acc) chosen [])

let random_regular rand n d =
  if d < 0 || d >= n then invalid_arg "Gen.random_regular: need 0 <= d < n";
  if n * d mod 2 <> 0 then invalid_arg "Gen.random_regular: n * d must be even";
  (* pairing model with local repair: stubs are shuffled and paired in
     order; a self-loop or duplicate edge is fixed by swapping in a
     random later stub (bounded retries), falling back to a full
     restart. Slightly non-uniform but degree-exact and fast for
     d << n. *)
  let rec attempt tries =
    if tries = 0 then invalid_arg "Gen.random_regular: too many restarts"
    else begin
      let stubs = Array.init (n * d) (fun i -> i / d) in
      Rand.shuffle rand stubs;
      let len = Array.length stubs in
      let seen = Hashtbl.create (n * d) in
      let es = ref [] in
      let ok = ref true in
      let i = ref 0 in
      while !ok && !i < len do
        let rec place retries =
          let u = stubs.(!i) and v = stubs.(!i + 1) in
          let e = if u < v then (u, v) else (v, u) in
          if u <> v && not (Hashtbl.mem seen e) then begin
            Hashtbl.replace seen e ();
            es := e :: !es;
            true
          end
          else if retries = 0 || !i + 2 >= len then false
          else begin
            let j = !i + 2 + Rand.int rand (len - !i - 2) in
            let tmp = stubs.(!i + 1) in
            stubs.(!i + 1) <- stubs.(j);
            stubs.(j) <- tmp;
            place (retries - 1)
          end
        in
        if place 100 then i := !i + 2 else ok := false
      done;
      if !ok then Graph.make ~n !es else attempt (tries - 1)
    end
  in
  attempt 200
