module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Key : ORDERED) = struct
  type t = { mutable data : (Key.t * int) array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let less h i j = Key.compare (fst h.data.(i)) (fst h.data.(j)) < 0

  let push h key v =
    if h.len = Array.length h.data then begin
      let grown = Array.make (max 64 (2 * h.len)) (key, v) in
      Array.blit h.data 0 grown 0 h.len;
      h.data <- grown
    end;
    h.data.(h.len) <- (key, v);
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if less h !i p then begin
        swap h !i p;
        i := p
      end
      else continue := false
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      h.data.(0) <- h.data.(h.len);
      let i = ref 0 and continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && less h l !smallest then smallest := l;
        if r < h.len && less h r !smallest then smallest := r;
        if !smallest <> !i then begin
          swap h !smallest !i;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end

  let size h = h.len
end
