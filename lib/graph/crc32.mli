(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

    Every length-prefixed section of a snapshot, every write-ahead log
    record ([Rs_store]) and every binary [.rsg] graph file
    ({!Graph_io}) carries one of these over its payload, so loading
    can tell a torn or bit-rotted tail from valid state. Checksums are
    returned as non-negative [int]s in [0, 2^32). *)

val of_substring : string -> pos:int -> len:int -> int
(** CRC-32 of [len] bytes of [s] starting at [pos]. Raises
    [Invalid_argument] on an out-of-range slice. *)

val of_string : string -> int

val update : int -> string -> pos:int -> len:int -> int
(** [update crc s ~pos ~len] extends a running checksum — feeding two
    slices in sequence equals one pass over their concatenation, which
    is how WAL records checksum header-plus-payload without copying. *)

val init : int
(** The running-checksum seed: [update init s = of_substring s]. *)

val finish : int -> int
(** No-op kept for symmetry with streaming CRC APIs ([update] already
    folds the final xor in); provided so call sites read naturally. *)
