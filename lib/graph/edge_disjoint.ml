(* Each undirected edge carries one unit of shared capacity, modelled
   as two opposite unit arcs of cost 1: a minimum-cost solution never
   uses both directions (cancelling them is strictly cheaper), so arc
   flows encode proper edge-disjoint path systems. All arc costs are
   positive, hence min-cost flows are cycle-free and decompose into
   simple paths. *)

let check_pair g s t =
  if s = t then invalid_arg "Edge_disjoint: s = t";
  if s < 0 || s >= Graph.n g || t < 0 || t >= Graph.n g then
    invalid_arg "Edge_disjoint: vertex out of range"

let build_network g =
  let net = Mincost_flow.create (Graph.n g) in
  Graph.iter_edges
    (fun a b ->
      Mincost_flow.add_arc net ~src:a ~dst:b ~cap:1 ~cost:1;
      Mincost_flow.add_arc net ~src:b ~dst:a ~cap:1 ~cost:1)
    g;
  net

let dk_profile g ~kmax s t =
  check_pair g s t;
  if kmax < 1 then invalid_arg "Edge_disjoint.dk_profile: kmax < 1";
  let net = build_network g in
  let units = Mincost_flow.min_cost_units net ~s ~t_:t ~max_units:kmax in
  let acc = ref 0 in
  Array.of_list
    (List.map
       (fun c ->
         acc := !acc + c;
         !acc)
       units)

let dk g ~k s t =
  let profile = dk_profile g ~kmax:k s t in
  if Array.length profile >= k then Some profile.(k - 1) else None

let max_disjoint g s t =
  check_pair g s t;
  let bound = min (Graph.degree g s) (Graph.degree g t) in
  if bound = 0 then 0 else Array.length (dk_profile g ~kmax:bound s t)

let min_sum_paths g ~k s t =
  check_pair g s t;
  if k < 1 then invalid_arg "Edge_disjoint.min_sum_paths: k < 1";
  let net = build_network g in
  let units = Mincost_flow.min_cost_units net ~s ~t_:t ~max_units:k in
  if List.length units < k then None
  else begin
    (* net flow per undirected edge: +1 means a->b, -1 means b->a *)
    let dir = Hashtbl.create 64 in
    List.iter
      (fun (src, dst, flow) ->
        if flow > 0 then begin
          let key = if src < dst then (src, dst) else (dst, src) in
          let signed = if src < dst then flow else -flow in
          Hashtbl.replace dir key (signed + Option.value ~default:0 (Hashtbl.find_opt dir key))
        end)
      (Mincost_flow.arcs_with_flow net);
    let succ : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.iter
      (fun (a, b) net_flow ->
        if net_flow > 0 then
          Hashtbl.replace succ a (b :: Option.value ~default:[] (Hashtbl.find_opt succ a))
        else if net_flow < 0 then
          Hashtbl.replace succ b (a :: Option.value ~default:[] (Hashtbl.find_opt succ b)))
      dir;
    let take v =
      match Hashtbl.find_opt succ v with
      | Some (x :: rest) ->
          Hashtbl.replace succ v rest;
          Some x
      | Some [] | None -> None
    in
    let walk () =
      let rec go v acc =
        if v = t then List.rev (t :: acc)
        else
          match take v with
          | Some w -> go w (v :: acc)
          | None -> invalid_arg "Edge_disjoint: broken flow decomposition"
      in
      go s []
    in
    Some (List.init k (fun _ -> walk ()))
  end

let edges_pairwise_disjoint paths =
  let seen = Hashtbl.create 64 in
  let path_ok p =
    let rec loop = function
      | a :: (b :: _ as rest) ->
          let key = if a < b then (a, b) else (b, a) in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            loop rest
          end
      | [ _ ] | [] -> true
    in
    loop p
  in
  List.for_all path_ok paths
