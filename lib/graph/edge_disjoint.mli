(** Edge-disjoint paths and the edge-k-connecting distance.

    The paper's concluding remark suggests extending remote-spanners
    to edge-connectivity, "where we consider paths that are
    edge-disjoint rather than internal-node disjoint". This module is
    the substrate for that extension: [d^k] with edge-disjointness,
    computed by min-cost flow {e without} vertex splitting (each
    undirected edge has one unit of capacity shared by both
    directions).

    Since internally vertex-disjoint paths are edge-disjoint,
    [dk_edge <= dk_vertex] pointwise, and the edge version can be
    finite where the vertex version is not (e.g. bow-tie graphs). *)

val dk_profile : Graph.t -> kmax:int -> int -> int -> int array
(** [dk_profile g ~kmax s t]: [a.(i-1)] is the minimum total length of
    [i] pairwise edge-disjoint s-t paths; shorter than [kmax] when
    fewer exist. *)

val dk : Graph.t -> k:int -> int -> int -> int option

val max_disjoint : Graph.t -> int -> int -> int
(** Maximum number of pairwise edge-disjoint s-t paths (edge version
    of Menger: equals the minimum s-t edge cut). *)

val min_sum_paths : Graph.t -> k:int -> int -> int -> Path.t list option
(** [k] edge-disjoint s-t paths of minimum total length. The returned
    walks are edge-simple; vertices may repeat across paths (but each
    returned path is itself a simple path after decomposition). *)

val edges_pairwise_disjoint : Path.t list -> bool
(** No undirected edge appears in two of the paths (or twice in one). *)
