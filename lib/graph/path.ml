type t = int list

let length = function
  | [] -> invalid_arg "Path.length: empty path"
  | p -> List.length p - 1

let source = function
  | [] -> invalid_arg "Path.source: empty path"
  | v :: _ -> v

let rec target = function
  | [] -> invalid_arg "Path.target: empty path"
  | [ v ] -> v
  | _ :: rest -> target rest

let no_repeats p =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.replace seen v ();
        true
      end)
    p

let edges_ok mem p =
  let rec loop = function
    | a :: (b :: _ as rest) -> mem a b && loop rest
    | [ _ ] | [] -> true
  in
  loop p

let is_valid g p = p <> [] && no_repeats p && edges_ok (Graph.mem_edge g) p

let is_valid_in s p = p <> [] && no_repeats p && edges_ok (Edge_set.mem s) p

let internal = function
  | [] | [ _ ] -> []
  | _ :: rest -> (
      match List.rev rest with _ :: mid -> List.rev mid | [] -> [])

let pairwise_disjoint paths =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun p ->
      List.for_all
        (fun v ->
          if Hashtbl.mem seen v then false
          else begin
            Hashtbl.replace seen v ();
            true
          end)
        (internal p))
    paths

let concat p q =
  match (List.rev p, q) with
  | last :: _, first :: rest when last = first -> p @ rest
  | _ -> invalid_arg "Path.concat: endpoint mismatch"

let of_parents parent v =
  if v < 0 || v >= Array.length parent || parent.(v) < 0 then
    invalid_arg "Path.of_parents: vertex unreached";
  let rec up v acc = if parent.(v) = v then v :: acc else up parent.(v) (v :: acc) in
  up v []

let pp fmt p =
  Format.fprintf fmt "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "-") Format.pp_print_int)
    p
