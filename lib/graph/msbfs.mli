(** Bit-parallel multi-source BFS over the CSR core.

    Advances up to {!width} roots per frontier sweep, one machine word
    of "seen" bits per vertex. When the roots' balls overlap — roots
    that are spatially close, as a locality-ordered batch produces —
    each shared vertex's neighbor range is scanned once per {e sweep}
    instead of once per {e root}, which is what makes construction at
    n = 10^5..10^6 tractable (see docs/PERFORMANCE.md, "Scaling").

    Per-slot results are exposed as visit order grouped by BFS level;
    distances, spheres and annuli derive from the level structure. For
    every slot the engine records the same [bfs/runs]/[bfs/expansions]
    metrics as a {!Bfs.Scratch.run} from that root, so batched and
    per-root constructions stay metric-identical.

    A [t] is reusable across runs and graphs (it grows, never shrinks)
    and must not be shared between domains. Accessors read the most
    recent run only. *)

val width : int
(** Maximum batch size, 62: OCaml ints are 63-bit and the engine stays
    clear of the sign bit so mask tests are plain [<> 0]. *)

type t

val create : unit -> t

val run : ?radius:int -> t -> Graph.t -> int array -> unit
(** [run t g srcs] performs one batched BFS from every root in [srcs]
    (at most {!width}, duplicates allowed). Slot [s] of the result
    corresponds to [srcs.(s)]. With [~radius], every traversal stops
    at that depth — identical reach to [Bfs.Scratch.run ~radius].
    Raises [Invalid_argument] when [Array.length srcs > width]. *)

val n_sources : t -> int
(** Number of slots filled by the last run. *)

val source : t -> int -> int
(** [source t s] is the root of slot [s]. *)

val visited_count : t -> int -> int
(** Ball size of slot [s] (vertices reached, including the root). *)

val iter_visited : t -> int -> (int -> int -> unit) -> unit
(** [iter_visited t s f] calls [f v d] for every vertex [v] reached by
    slot [s] at distance [d], in increasing distance order. *)

val levels : t -> int -> max_dist:int -> int array array
(** [levels t s ~max_dist] is the slot's ball grouped by level:
    element [d] holds the vertices at distance exactly [d], sorted by
    id, for [0 <= d <= max_dist] (empty beyond the reach of the run).
    Matches the layer decomposition the tree constructions consume. *)
