(* Table-driven CRC-32, reflected polynomial 0xEDB88320 (IEEE 802.3 /
   zlib). Checksums live in plain non-negative [int]s — OCaml ints are
   63-bit here, so the 32-bit value always fits; the table is built
   once, lazily. *)

let table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* Slicing-by-8 (Intel's extension of Sarwate's algorithm): row [k]
   advances a byte through [k] further zero bytes, so eight lookups
   xor-folded together consume eight input bytes per iteration instead
   of one. Rows live in one flat array ([k * 256 + i]) to keep the
   lookups on a single base pointer. *)
let table8 =
  lazy
    (let t0 = Lazy.force table in
     let t = Array.make (8 * 256) 0 in
     Array.blit t0 0 t 0 256;
     for k = 1 to 7 do
       for i = 0 to 255 do
         let c = t.(((k - 1) * 256) + i) in
         t.((k * 256) + i) <- t0.(c land 0xFF) lxor (c lsr 8)
       done
     done;
     t)

let init = 0

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: slice out of range";
  let t = Lazy.force table8 in
  (* [update] composes, so the stored running value is the plain CRC;
     re-invert on entry, invert back on exit. All table indices are
     masked to [0, 255], so the unsafe lookups are in range. *)
  let c = ref (crc lxor 0xFFFFFFFF) in
  let b i = Char.code (String.unsafe_get s i) in
  let word i = b i lor (b (i + 1) lsl 8) lor (b (i + 2) lsl 16) lor (b (i + 3) lsl 24) in
  let i = ref pos in
  let stop = pos + len in
  while stop - !i >= 8 do
    let x = !c lxor word !i in
    let y = word (!i + 4) in
    c :=
      Array.unsafe_get t ((7 * 256) + (x land 0xFF))
      lxor Array.unsafe_get t ((6 * 256) + ((x lsr 8) land 0xFF))
      lxor Array.unsafe_get t ((5 * 256) + ((x lsr 16) land 0xFF))
      lxor Array.unsafe_get t ((4 * 256) + (x lsr 24))
      lxor Array.unsafe_get t ((3 * 256) + (y land 0xFF))
      lxor Array.unsafe_get t ((2 * 256) + ((y lsr 8) land 0xFF))
      lxor Array.unsafe_get t ((1 * 256) + ((y lsr 16) land 0xFF))
      lxor Array.unsafe_get t (y lsr 24);
    i := !i + 8
  done;
  while !i < stop do
    c := Array.unsafe_get t ((!c lxor b !i) land 0xFF) lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xFFFFFFFF

let finish crc = crc

let of_substring s ~pos ~len = update init s ~pos ~len
let of_string s = of_substring s ~pos:0 ~len:(String.length s)
