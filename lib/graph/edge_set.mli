(** Mutable sets of edges of a fixed host graph.

    A sub-graph [H] of [G] with [V(H) = V(G)] is represented as the set
    of canonical edge ids of its edges — a bit vector of length [m(G)].
    This is how every remote-spanner candidate is stored: constructions
    union dominating trees into an [Edge_set.t], verifiers materialize
    its adjacency with {!to_adjacency}. *)

type t

val create : Graph.t -> t
(** Empty edge set over the given host graph. *)

val full : Graph.t -> t
(** All edges of the host graph. *)

val host : t -> Graph.t

val copy : t -> t

val add : t -> int -> int -> unit
(** [add s u v] inserts edge [uv]; the edge must exist in the host
    graph (raises [Not_found] otherwise). Idempotent. *)

val add_id : t -> int -> unit
(** Insert by canonical edge id. *)

val remove : t -> int -> int -> unit

val mem : t -> int -> int -> bool
(** Membership; false when [uv] is not even a host edge. *)

val mem_id : t -> int -> bool

val cardinal : t -> int
(** Number of edges currently in the set. *)

val union_into : t -> t -> unit
(** [union_into dst src] adds all edges of [src] into [dst]. Both must
    share the same host graph. *)

val iter : (int -> int -> unit) -> t -> unit
(** Iterate over member edges as canonical [(u, v)], [u < v]. *)

val to_list : t -> (int * int) list

val to_adjacency : t -> int array array
(** Materialize sorted adjacency arrays of the sub-graph (on the full
    vertex set of the host). Cost O(n + m). *)

val to_graph : t -> Graph.t
(** Materialize as a standalone {!Graph.t} on the same vertex set. *)

val subset : t -> t -> bool
(** [subset a b] is true when every edge of [a] is in [b]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
