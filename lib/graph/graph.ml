(* Flat CSR core: [off] has n+1 offsets into [nbr], which packs every
   vertex's sorted neighbor list; [nbr_eid] carries the canonical edge
   id in lock-step with [nbr]. Adjacency queries are cache-friendly
   array scans and edge probes are binary searches — no hash tables on
   the hot path. [adj] keeps the historical per-vertex arrays alive for
   the [neighbors] accessor; it is built on first demand because it
   duplicates [nbr] (at n = 10^6 the copies cost hundreds of MB) and
   the hot paths all run over the CSR directly. The memoization is an
   [Atomic] publish rather than [Lazy.t] because parallel constructions
   probe [neighbors] from several domains and [Lazy.force] is not
   domain-safe (concurrent force can raise [Lazy.Undefined]). *)
type t = {
  n : int;
  off : int array; (* length n+1 *)
  nbr : int array; (* length 2m, sorted within each vertex's range *)
  nbr_eid : int array; (* edge id of nbr.(i), aligned with nbr *)
  adj : int array array option Atomic.t;
  edges : (int * int) array;
}

let canonical u v = if u < v then (u, v) else (v, u)

let cmp_edge (u1, v1) (u2, v2) =
  let c = Int.compare u1 u2 in
  if c <> 0 then c else Int.compare v1 v2

(* CSR fill from an owned, canonical ([u < v]), lex-sorted, duplicate-free
   edge array. Shared by the generic [build] path (which sorts and
   dedups first) and [of_canonical] (whose input is validated to
   already be in this form, so a binary snapshot load pays no sort). *)
let fill_csr n edges =
  let m = Array.length edges in
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + deg.(u)
  done;
  let nbr = Array.make (2 * m) 0 in
  let nbr_eid = Array.make (2 * m) 0 in
  let fill = Array.copy off in
  Array.iteri
    (fun id (u, v) ->
      nbr.(fill.(u)) <- v;
      nbr_eid.(fill.(u)) <- id;
      fill.(u) <- fill.(u) + 1;
      nbr.(fill.(v)) <- u;
      nbr_eid.(fill.(v)) <- id;
      fill.(v) <- fill.(v) + 1)
    edges;
  (* per-vertex ranges must be sorted by neighbor id, carrying the edge
     ids along; edges arrive lex-sorted so each range is a merge of two
     already-sorted streams — a plain paired sort keeps it simple *)
  let idx = Array.make (Array.fold_left max 0 deg) 0 in
  let tmp_n = Array.make (Array.length idx) 0 in
  let tmp_e = Array.make (Array.length idx) 0 in
  for u = 0 to n - 1 do
    let lo = off.(u) and d = deg.(u) in
    let sorted = ref true in
    for i = lo + 1 to lo + d - 1 do
      if nbr.(i - 1) > nbr.(i) then sorted := false
    done;
    if not !sorted then begin
      let sub = Array.sub idx 0 d in
      Array.iteri (fun i _ -> sub.(i) <- lo + i) sub;
      Array.sort (fun a b -> Int.compare nbr.(a) nbr.(b)) sub;
      Array.iteri
        (fun i p ->
          tmp_n.(i) <- nbr.(p);
          tmp_e.(i) <- nbr_eid.(p))
        sub;
      Array.blit tmp_n 0 nbr lo d;
      Array.blit tmp_e 0 nbr_eid lo d
    end
  done;
  { n; off; nbr; nbr_eid; adj = Atomic.make None; edges }

let build n edge_list =
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Graph.make: endpoint out of range (%d,%d)" u v);
      if u = v then invalid_arg (Printf.sprintf "Graph.make: self-loop at %d" u))
    edge_list;
  (* canonicalize, sort lexicographically, drop duplicates *)
  let raw = Array.of_list (List.map (fun (u, v) -> canonical u v) edge_list) in
  Array.sort cmp_edge raw;
  let m =
    let count = ref 0 in
    Array.iteri (fun i e -> if i = 0 || cmp_edge raw.(i - 1) e <> 0 then incr count) raw;
    !count
  in
  let edges = Array.make m (0, 0) in
  let j = ref 0 in
  Array.iteri
    (fun i e ->
      if i = 0 || cmp_edge raw.(i - 1) e <> 0 then begin
        edges.(!j) <- e;
        incr j
      end)
    raw;
  fill_csr n edges

let make ~n edges =
  if n < 0 then invalid_arg "Graph.make: negative n";
  build n edges

let of_arrays ~n edges = make ~n (Array.to_list edges)

let of_canonical ?(validate = true) ~n edges =
  if n < 0 then invalid_arg "Graph.of_canonical: negative n";
  if validate then begin
    let m = Array.length edges in
    for i = 0 to m - 1 do
      let u, v = edges.(i) in
      if u < 0 || v >= n then
        invalid_arg (Printf.sprintf "Graph.of_canonical: endpoint out of range (%d,%d)" u v);
      if u >= v then
        invalid_arg (Printf.sprintf "Graph.of_canonical: edge (%d,%d) not canonical" u v);
      if i > 0 && cmp_edge edges.(i - 1) (u, v) >= 0 then
        invalid_arg
          (Printf.sprintf "Graph.of_canonical: edges not strictly sorted at (%d,%d)" u v)
    done
  end;
  (* [u < v < n] plus strict lex order is the full [make] contract:
     in-range, no self-loops, no duplicates — one O(m) pass instead of
     a sort, which is what makes the binary snapshot load fast.
     [~validate:false] skips the check for callers that constructed
     the array themselves (sharded induced sub-graphs, hot loaders). *)
  fill_csr n (Array.copy edges)

let n g = g.n
let m g = Array.length g.edges
(* Once published the adjacency never changes; if two domains race on
   the first access both build a copy and CAS picks the winner — the
   loser's copy is garbage, which is safe, just wasted work. Callers
   that fan out work probing [neighbors] should [force_adj] first so
   only the coordinating domain pays the O(n + m) build. *)
let adjacency g =
  match Atomic.get g.adj with
  | Some a -> a
  | None ->
      let a =
        Array.init g.n (fun u -> Array.sub g.nbr g.off.(u) (g.off.(u + 1) - g.off.(u)))
      in
      if Atomic.compare_and_set g.adj None (Some a) then a
      else Option.get (Atomic.get g.adj)

let force_adj g = ignore (adjacency g : int array array)
let neighbors g u = (adjacency g).(u)
let degree g u = g.off.(u + 1) - g.off.(u)

let csr g = (g.off, g.nbr)

let iter_neighbors g u f =
  let nbr = g.nbr in
  for i = g.off.(u) to g.off.(u + 1) - 1 do
    f nbr.(i)
  done

let fold_neighbors g u f acc =
  let nbr = g.nbr in
  let acc = ref acc in
  for i = g.off.(u) to g.off.(u + 1) - 1 do
    acc := f !acc nbr.(i)
  done;
  !acc

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    best := max !best (degree g u)
  done;
  !best

(* binary search for [v] in [u]'s CSR range; -1 when absent *)
let nbr_slot g u v =
  let lo = ref g.off.(u) and hi = ref (g.off.(u + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.nbr.(mid) in
    if w = v then found := mid else if w < v then lo := mid + 1 else hi := mid - 1
  done;
  !found

let mem_edge g u v = u <> v && u >= 0 && u < g.n && v >= 0 && v < g.n && nbr_slot g u v >= 0

let edge_id g u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then raise Not_found;
  let slot = nbr_slot g u v in
  if slot < 0 then raise Not_found else g.nbr_eid.(slot)

let edge g id = g.edges.(id)
let edges g = g.edges

let iter_edges f g = Array.iter (fun (u, v) -> f u v) g.edges

let fold_edges f acc g = Array.fold_left (fun acc (u, v) -> f acc u v) acc g.edges

let iter_vertices f g =
  for u = 0 to g.n - 1 do
    f u
  done

let fold_vertices f acc g =
  let acc = ref acc in
  for u = 0 to g.n - 1 do
    acc := f !acc u
  done;
  !acc

let induced g vs =
  let k = Array.length vs in
  let fwd = Hashtbl.create k in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem fwd v then invalid_arg "Graph.induced: duplicate vertex";
      Hashtbl.replace fwd v i)
    vs;
  let es = ref [] in
  Array.iteri
    (fun i v ->
      iter_neighbors g v (fun w ->
          match Hashtbl.find_opt fwd w with
          | Some j when i < j -> es := (i, j) :: !es
          | _ -> ()))
    vs;
  (make ~n:k !es, Array.copy vs)

let remove_vertex g u =
  let es =
    fold_edges (fun acc a b -> if a = u || b = u then acc else (a, b) :: acc) [] g
  in
  make ~n:g.n es

let union_edges g es =
  make ~n:g.n (List.rev_append es (Array.to_list g.edges))

let equal g1 g2 =
  g1.n = g2.n
  && Array.length g1.edges = Array.length g2.edges
  && begin
       let ok = ref true in
       Array.iteri
         (fun i e -> if cmp_edge e g2.edges.(i) <> 0 then ok := false)
         g1.edges;
       !ok
     end

let pp fmt g =
  Format.fprintf fmt "@[<v>graph n=%d m=%d@,@[<hov>" g.n (m g);
  iter_edges (fun u v -> Format.fprintf fmt "(%d,%d)@ " u v) g;
  Format.fprintf fmt "@]@]"
