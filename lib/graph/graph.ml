type t = {
  n : int;
  adj : int array array;
  edges : (int * int) array;
  eid : (int, int) Hashtbl.t; (* key = u * n + v with u < v *)
}

let key g u v = if u < v then (u * g.n) + v else (v * g.n) + u

let canonical u v = if u < v then (u, v) else (v, u)

let build n edge_list =
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Graph.make: endpoint out of range (%d,%d)" u v);
      if u = v then invalid_arg (Printf.sprintf "Graph.make: self-loop at %d" u))
    edge_list;
  let tbl = Hashtbl.create (max 16 (List.length edge_list)) in
  List.iter
    (fun (u, v) ->
      let u, v = canonical u v in
      Hashtbl.replace tbl ((u * n) + v) (u, v))
    edge_list;
  let edges = Array.make (Hashtbl.length tbl) (0, 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun _ e ->
      edges.(!i) <- e;
      incr i)
    tbl;
  Array.sort compare edges;
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun u -> Array.make deg.(u) 0) in
  let fill = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  Array.iter (fun a -> Array.sort compare a) adj;
  let eid = Hashtbl.create (max 16 (Array.length edges)) in
  Array.iteri (fun i (u, v) -> Hashtbl.replace eid ((u * n) + v) i) edges;
  { n; adj; edges; eid }

let make ~n edges =
  if n < 0 then invalid_arg "Graph.make: negative n";
  build n edges

let of_arrays ~n edges = make ~n (Array.to_list edges)

let n g = g.n
let m g = Array.length g.edges
let neighbors g u = g.adj.(u)
let degree g u = Array.length g.adj.(u)

let max_degree g = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 g.adj

let mem_edge g u v = u <> v && Hashtbl.mem g.eid (key g u v)

let edge_id g u v =
  match Hashtbl.find_opt g.eid (key g u v) with
  | Some id -> id
  | None -> raise Not_found

let edge g id = g.edges.(id)
let edges g = g.edges

let iter_edges f g = Array.iter (fun (u, v) -> f u v) g.edges

let fold_edges f acc g = Array.fold_left (fun acc (u, v) -> f acc u v) acc g.edges

let iter_vertices f g =
  for u = 0 to g.n - 1 do
    f u
  done

let fold_vertices f acc g =
  let acc = ref acc in
  for u = 0 to g.n - 1 do
    acc := f !acc u
  done;
  !acc

let induced g vs =
  let k = Array.length vs in
  let fwd = Hashtbl.create k in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem fwd v then invalid_arg "Graph.induced: duplicate vertex";
      Hashtbl.replace fwd v i)
    vs;
  let es = ref [] in
  Array.iteri
    (fun i v ->
      Array.iter
        (fun w ->
          match Hashtbl.find_opt fwd w with
          | Some j when i < j -> es := (i, j) :: !es
          | _ -> ())
        g.adj.(v))
    vs;
  (make ~n:k !es, Array.copy vs)

let remove_vertex g u =
  let es =
    fold_edges (fun acc a b -> if a = u || b = u then acc else (a, b) :: acc) [] g
  in
  make ~n:g.n es

let union_edges g es =
  make ~n:g.n (List.rev_append es (Array.to_list g.edges))

let equal g1 g2 = g1.n = g2.n && g1.edges = g2.edges

let pp fmt g =
  Format.fprintf fmt "@[<v>graph n=%d m=%d@,@[<hov>" g.n (m g);
  iter_edges (fun u v -> Format.fprintf fmt "(%d,%d)@ " u v) g;
  Format.fprintf fmt "@]@]"
