(** Internally vertex-disjoint paths and the k-connecting distance.

    The paper measures multi-connectivity through
    [d^k(s,t)] = minimum total length of k pairwise internally
    vertex-disjoint s-t paths ([+infinity] when no k such paths exist).
    We reduce to min-cost unit-capacity flow by vertex splitting: each
    vertex other than [s], [t] becomes an arc of capacity one, each
    undirected edge two opposite arcs of cost one. The cumulative cost
    after the i-th augmentation is exactly [d^i(s,t)]. *)

val dk_profile : Graph.t -> kmax:int -> int -> int -> int array
(** [dk_profile g ~kmax s t] returns an array [a] with
    [a.(i-1) = d^i(s,t)] for [1 <= i <= length a]; the array is shorter
    than [kmax] when fewer disjoint paths exist. [s <> t] required. *)

val dk : Graph.t -> k:int -> int -> int -> int option
(** [dk g ~k s t] is [Some (d^k(s,t))], or [None] when [s] and [t] are
    not k-connected. *)

val max_disjoint : Graph.t -> int -> int -> int
(** Menger number: the maximum number of pairwise internally
    vertex-disjoint s-t paths. For adjacent vertices the direct edge
    counts as one path. *)

val min_sum_paths : Graph.t -> k:int -> int -> int -> Path.t list option
(** [min_sum_paths g ~k s t] returns k pairwise internally disjoint
    paths of minimum total length, or [None] if fewer than k exist.
    The returned paths are valid simple paths of [g]. *)
