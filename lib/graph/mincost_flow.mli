(** Minimum-cost maximum-flow on small directed networks.

    Successive-shortest-paths with Johnson potentials (Dijkstra on the
    reduced costs). Capacities and costs are non-negative integers.
    This is the engine behind the k-connecting distance [d^k]: one unit
    of flow per disjoint path, and the cumulative cost after the k-th
    unit is the minimum total length of k disjoint paths. *)

type t

val create : int -> t
(** [create n] makes an empty network on nodes [0..n-1]. *)

val add_arc : t -> src:int -> dst:int -> cap:int -> cost:int -> unit
(** Add a directed arc. Negative capacity or cost is rejected. *)

val augment_unit : t -> s:int -> t_:int -> int option
(** Send one more unit of flow from [s] to [t_] along a shortest
    (reduced-cost) augmenting path. Returns the {e real} cost of that
    unit (so successive calls return a non-decreasing sequence), or
    [None] when no augmenting path exists. The network keeps its state
    between calls. *)

val min_cost_units : t -> s:int -> t_:int -> max_units:int -> int list
(** [min_cost_units net ~s ~t_ ~max_units] augments unit by unit, up to
    [max_units] times, and returns the list of per-unit costs in order
    (shorter than [max_units] when the flow saturates). The i-th prefix
    sum is the min-cost of an i-unit flow. *)

val flow_on : t -> arc:int -> int
(** Flow currently on the [arc]-th added arc (in insertion order). *)

val arcs_with_flow : t -> (int * int * int) list
(** All original arcs carrying positive flow, as (src, dst, flow). *)
