type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy r = { state = r.state }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 r =
  r.state <- Int64.add r.state golden_gamma;
  mix64 r.state

let split r =
  let s = bits64 r in
  { state = s }

let int r bound =
  if bound <= 0 then invalid_arg "Rand.int: bound must be positive";
  (* 62 bits of entropy: stays non-negative after Int64.to_int on a
     63-bit OCaml int. Rejection-free is fine against small bounds. *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 r) 2) in
  x mod bound

let float r bound =
  let x = Int64.to_float (Int64.shift_right_logical (bits64 r) 11) in
  (* 53 significant bits *)
  bound *. (x /. 9007199254740992.0)

let bool r = Int64.logand (bits64 r) 1L = 1L

let poisson r lambda =
  if lambda < 0.0 then invalid_arg "Rand.poisson: negative mean";
  if lambda <= 500.0 then begin
    let limit = exp (-.lambda) in
    let rec loop k p =
      let p = p *. float r 1.0 in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.0
  end
  else begin
    (* Box–Muller normal approximation, adequate for large means. *)
    let u1 = max 1e-300 (float r 1.0) and u2 = float r 1.0 in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    max 0 (int_of_float (Float.round (lambda +. (z *. sqrt lambda))))
  end

let shuffle r a =
  for i = Array.length a - 1 downto 1 do
    let j = int r (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick r a =
  if Array.length a = 0 then invalid_arg "Rand.pick: empty array";
  a.(int r (Array.length a))
