(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the library flows through an explicit [Rand.t] so
    that every experiment is reproducible bit-for-bit from its seed.
    The generator is the splitmix64 sequence of Steele, Lea and Flood,
    which passes BigCrush and is trivially splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Equal
    seeds yield equal streams. *)

val copy : t -> t
(** [copy r] returns an independent generator at the same state. *)

val split : t -> t
(** [split r] advances [r] and returns a new generator whose stream is
    statistically independent from the continuation of [r]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int r bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val float : t -> float -> float
(** [float r bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val poisson : t -> float -> int
(** [poisson r lambda] samples a Poisson random variable of mean
    [lambda]. Uses Knuth's product method for small [lambda] and a
    normal approximation with continuity correction above 500 (exact
    enough for experiment sizing). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
