type t = { root : int; parent : int array; mutable size : int }

let create ~n ~root =
  if root < 0 || root >= n then invalid_arg "Tree.create: root out of range";
  let parent = Array.make n (-1) in
  parent.(root) <- root;
  { root; parent; size = 1 }

let root t = t.root

let mem t v = v >= 0 && v < Array.length t.parent && t.parent.(v) >= 0

let parent t v =
  if not (mem t v) then invalid_arg "Tree.parent: not a member";
  t.parent.(v)

let add_edge t ~parent ~child =
  if not (mem t parent) then invalid_arg "Tree.add_edge: parent not in tree";
  if child = t.root then invalid_arg "Tree.add_edge: cannot re-parent the root";
  if mem t child then begin
    if t.parent.(child) <> parent then
      invalid_arg "Tree.add_edge: child already has a different parent"
  end
  else begin
    t.parent.(child) <- parent;
    t.size <- t.size + 1
  end

let graft_fn t parent_of x =
  if parent_of x < 0 then invalid_arg "Tree.graft_fn: vertex unreached";
  let rec climb v =
    if not (mem t v) then begin
      let p = parent_of v in
      climb p;
      add_edge t ~parent:p ~child:v
    end
  in
  climb x

let graft_parents t bfs_parent x = graft_fn t (Array.get bfs_parent) x

let depth t v =
  if not (mem t v) then invalid_arg "Tree.depth: not a member";
  let rec up v acc = if v = t.root then acc else up t.parent.(v) (acc + 1) in
  up v 0

let first_hop t v =
  if not (mem t v) then invalid_arg "Tree.first_hop: not a member";
  if v = t.root then invalid_arg "Tree.first_hop: root has no first hop";
  let rec up v = if t.parent.(v) = t.root then v else up t.parent.(v) in
  up v

let path_from_root t v =
  if not (mem t v) then invalid_arg "Tree.path_from_root: not a member";
  let rec up v acc = if v = t.root then v :: acc else up t.parent.(v) (v :: acc) in
  up v []

let size t = t.size
let edge_count t = t.size - 1

let vertices t =
  let acc = ref [] in
  for v = Array.length t.parent - 1 downto 0 do
    if t.parent.(v) >= 0 then acc := v :: !acc
  done;
  !acc

let edges t =
  let acc = ref [] in
  for v = Array.length t.parent - 1 downto 0 do
    if t.parent.(v) >= 0 && v <> t.root then acc := (t.parent.(v), v) :: !acc
  done;
  !acc

let edges_in g t = List.for_all (fun (p, c) -> Graph.mem_edge g p c) (edges t)

let add_to set t = List.iter (fun (p, c) -> Edge_set.add set p c) (edges t)

let pp fmt t =
  Format.fprintf fmt "@[<hov>tree root=%d size=%d@ " t.root t.size;
  List.iter (fun (p, c) -> Format.fprintf fmt "%d->%d@ " p c) (edges t);
  Format.fprintf fmt "@]"
