(** Rooted trees over a subset of a graph's vertices.

    A tree is a parent array: [parent.(root) = root], [parent.(v) = -1]
    for vertices outside the tree. Dominating trees (the paper's
    central tool) are values of this type whose edges live in the host
    graph; unions of trees form the remote-spanner edge sets. *)

type t

val create : n:int -> root:int -> t
(** Tree containing only its root, over a vertex universe of size [n]. *)

val root : t -> int

val mem : t -> int -> bool
(** Vertex membership. *)

val parent : t -> int -> int
(** Parent of a member vertex; [root] maps to itself. Raises
    [Invalid_argument] on non-members. *)

val add_edge : t -> parent:int -> child:int -> unit
(** Attach [child] under [parent]. [parent] must already be in the
    tree. If [child] is already in the tree, the call must agree with
    its existing parent (re-adding the same edge is a no-op; conflicting
    parents raise [Invalid_argument] — a tree has one path per node). *)

val graft_fn : t -> (int -> int) -> int -> unit
(** [graft_fn t parent_of x]: like {!graft_parents} with the parent
    relation given as a function (e.g. {!Bfs.Scratch.parent} partially
    applied), so callers need not materialize a parent array. *)

val graft_parents : t -> int array -> int -> unit
(** [graft_parents t bfs_parent x] adds the whole path root..x read off
    a BFS parent array rooted at [t]'s root (see {!Bfs.parents}). Stops
    climbing as soon as an already-member vertex is met, so repeated
    grafts of shortest paths keep depths equal to BFS distances. *)

val depth : t -> int -> int
(** Edge-distance from the root to a member vertex. *)

val first_hop : t -> int -> int
(** The depth-1 ancestor of a non-root member. Two root-to-node tree
    paths are internally disjoint iff their first hops differ and
    neither target lies on the other path; this accessor supports the
    disjointness checks of k-connecting dominating trees. *)

val path_from_root : t -> int -> Path.t
(** Unique tree path root..v. *)

val size : t -> int
(** Number of member vertices. *)

val edge_count : t -> int
(** [size t - 1]. *)

val vertices : t -> int list
(** Member vertices in increasing order. *)

val edges : t -> (int * int) list
(** Tree edges as (parent, child) pairs. *)

val edges_in : Graph.t -> t -> bool
(** All tree edges are edges of the given graph. *)

val add_to : Edge_set.t -> t -> unit
(** Union the tree's edges into an edge set (host must contain them). *)

val pp : Format.formatter -> t -> unit
