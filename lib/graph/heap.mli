(** Minimal binary min-heaps, shared by the Dijkstra variants.

    A functor over the key type; values are the priorities, payloads
    are ints (vertex/arc ids). Amortized O(log n) push/pop, grow-only
    storage. Duplicate payloads are allowed (lazy deletion is the
    caller's concern, as usual for Dijkstra). *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Key : ORDERED) : sig
  type t

  val create : unit -> t
  val push : t -> Key.t -> int -> unit
  val pop : t -> (Key.t * int) option
  (** Smallest key first; [None] when empty. *)

  val size : t -> int
end
