let to_string g =
  let buf = Buffer.create (16 * (Graph.m g + 1)) in
  (* string_of_int + add_string, not sprintf: formatting dominated
     [rspan gen] at n = 10^5 *)
  let add_pair a b =
    Buffer.add_string buf (string_of_int a);
    Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int b);
    Buffer.add_char buf '\n'
  in
  add_pair (Graph.n g) (Graph.m g);
  Graph.iter_edges add_pair g;
  Buffer.contents buf

let of_string s =
  (* numbered meaningful lines: 1-based position in the raw input, so
     every diagnostic can name the offending line *)
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> failwith "Graph_io.of_string: empty input"
  | (_, header) :: rest ->
      let n, m =
        match String.split_on_char ' ' header |> List.filter (( <> ) "") with
        | [ a; b ] -> (
            try (int_of_string a, int_of_string b)
            with _ -> failwith "Graph_io.of_string: bad header")
        | _ -> failwith "Graph_io.of_string: bad header"
      in
      let parse_edge (ln, l) =
        match String.split_on_char ' ' l |> List.filter (( <> ) "") with
        | [ a; b ] -> (
            try (ln, (int_of_string a, int_of_string b))
            with _ -> failwith ("Graph_io.of_string: bad edge line: " ^ l))
        | _ -> failwith ("Graph_io.of_string: bad edge line: " ^ l)
      in
      let edges = List.map parse_edge rest in
      (match List.nth_opt edges m with
      | Some (ln, _) ->
          failwith
            (Printf.sprintf
               "Graph_io.of_string: trailing garbage: edge line %d exceeds the \
                declared m=%d" ln m)
      | None -> ());
      let found = List.length edges in
      if found <> m then
        failwith
          (Printf.sprintf
             "Graph_io.of_string: edge count mismatch: header declares m=%d, \
              found %d" m found);
      (* a duplicate (in either orientation) would be silently merged by
         [Graph.make], leaving a graph with fewer edges than the header
         promised — reject it instead *)
      let seen = Hashtbl.create (2 * m) in
      List.iter
        (fun (ln, (u, v)) ->
          let key = if u <= v then (u, v) else (v, u) in
          match Hashtbl.find_opt seen key with
          | Some first ->
              failwith
                (Printf.sprintf
                   "Graph_io.of_string: duplicate edge %d %d (line %d repeats \
                    line %d)" u v ln first)
          | None -> Hashtbl.replace seen key ln)
        edges;
      Graph.make ~n (List.map snd edges)

(* {1 Binary format}

   The [.rsg] layout is the Snapshot GRAPH section promoted to a
   standalone file: magic "RSGRF001", then u32 n, u32 m, m little-endian
   (u32 u, u32 v) canonical edge pairs, and a trailing u32 CRC-32 over
   everything after the magic. Fixed-size records, no parsing — a
   10^6-node graph loads in tens of milliseconds where the text parser
   takes seconds. *)

let binary_magic = "RSGRF001"

let to_binary_string g =
  let n = Graph.n g and m = Graph.m g in
  let len = 8 + 8 + (8 * m) + 4 in
  let b = Bytes.create len in
  Bytes.blit_string binary_magic 0 b 0 8;
  let set pos x = Bytes.set_int32_le b pos (Int32.of_int x) in
  set 8 n;
  set 12 m;
  let pos = ref 16 in
  Graph.iter_edges
    (fun u v ->
      set !pos u;
      set (!pos + 4) v;
      pos := !pos + 8)
    g;
  (* the CRC field is still zero here and not part of the checksummed
     range, so reading the buffer before patching it in is sound *)
  set (len - 4) (Crc32.of_substring (Bytes.unsafe_to_string b) ~pos:8 ~len:(len - 12));
  Bytes.unsafe_to_string b

let of_binary_string s =
  let len = String.length s in
  if len < 8 || String.sub s 0 8 <> binary_magic then
    failwith "Graph_io.of_binary_string: bad magic";
  if len < 20 then failwith "Graph_io.of_binary_string: truncated header";
  let get pos = Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF in
  let n = get 8 and m = get 12 in
  if len <> 20 + (8 * m) then
    failwith
      (Printf.sprintf
         "Graph_io.of_binary_string: file length %d does not match m=%d edges" len m);
  if Crc32.of_substring s ~pos:8 ~len:(len - 12) <> get (len - 4) then
    failwith "Graph_io.of_binary_string: checksum mismatch";
  let edges = Array.init m (fun i -> (get (16 + (8 * i)), get (20 + (8 * i)))) in
  try Graph.of_canonical ~n edges
  with Invalid_argument msg -> failwith ("Graph_io.of_binary_string: " ^ msg)

let is_binary s = String.length s >= 8 && String.sub s 0 8 = binary_magic

let save path g =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (to_string g))

let write_binary path g =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (to_binary_string g))

let read_binary path =
  of_binary_string (In_channel.with_open_bin path In_channel.input_all)

let load path =
  let s = In_channel.with_open_bin path In_channel.input_all in
  if is_binary s then of_binary_string s else of_string s

let to_dot ?highlight ?(labels = string_of_int) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph G {\n  node [shape=circle];\n";
  Graph.iter_vertices
    (fun u -> Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"];\n" u (labels u)))
    g;
  Graph.iter_edges
    (fun u v ->
      let hot = match highlight with Some h -> Edge_set.mem h u v | None -> false in
      let style = if hot then " [color=red, penwidth=2.0]" else " [color=gray]" in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d%s;\n" u v style))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
