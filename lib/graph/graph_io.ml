let to_string g =
  let buf = Buffer.create (16 * Graph.m g) in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v)) g;
  Buffer.contents buf

let of_string s =
  (* numbered meaningful lines: 1-based position in the raw input, so
     every diagnostic can name the offending line *)
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> failwith "Graph_io.of_string: empty input"
  | (_, header) :: rest ->
      let n, m =
        match String.split_on_char ' ' header |> List.filter (( <> ) "") with
        | [ a; b ] -> (
            try (int_of_string a, int_of_string b)
            with _ -> failwith "Graph_io.of_string: bad header")
        | _ -> failwith "Graph_io.of_string: bad header"
      in
      let parse_edge (ln, l) =
        match String.split_on_char ' ' l |> List.filter (( <> ) "") with
        | [ a; b ] -> (
            try (ln, (int_of_string a, int_of_string b))
            with _ -> failwith ("Graph_io.of_string: bad edge line: " ^ l))
        | _ -> failwith ("Graph_io.of_string: bad edge line: " ^ l)
      in
      let edges = List.map parse_edge rest in
      (match List.nth_opt edges m with
      | Some (ln, _) ->
          failwith
            (Printf.sprintf
               "Graph_io.of_string: trailing garbage: edge line %d exceeds the \
                declared m=%d" ln m)
      | None -> ());
      let found = List.length edges in
      if found <> m then
        failwith
          (Printf.sprintf
             "Graph_io.of_string: edge count mismatch: header declares m=%d, \
              found %d" m found);
      (* a duplicate (in either orientation) would be silently merged by
         [Graph.make], leaving a graph with fewer edges than the header
         promised — reject it instead *)
      let seen = Hashtbl.create (2 * m) in
      List.iter
        (fun (ln, (u, v)) ->
          let key = if u <= v then (u, v) else (v, u) in
          match Hashtbl.find_opt seen key with
          | Some first ->
              failwith
                (Printf.sprintf
                   "Graph_io.of_string: duplicate edge %d %d (line %d repeats \
                    line %d)" u v ln first)
          | None -> Hashtbl.replace seen key ln)
        edges;
      Graph.make ~n (List.map snd edges)

let save path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      of_string s)

let to_dot ?highlight ?(labels = string_of_int) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph G {\n  node [shape=circle];\n";
  Graph.iter_vertices
    (fun u -> Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"];\n" u (labels u)))
    g;
  Graph.iter_edges
    (fun u v ->
      let hot = match highlight with Some h -> Edge_set.mem h u v | None -> false in
      let style = if hot then " [color=red, penwidth=2.0]" else " [color=gray]" in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d%s;\n" u v style))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
