type t = {
  n : int;
  (* arc-parallel arrays; arc i and i lxor 1 are mutual residuals *)
  mutable head : int array;
  mutable cap : int array;
  mutable cost : int array;
  mutable narcs : int;
  out : int list array; (* arcs leaving each node, most recent first *)
  pot : int array; (* Johnson potentials *)
  mutable original : int list; (* ids of user-added arcs, reversed *)
}

let create n =
  {
    n;
    head = Array.make 16 0;
    cap = Array.make 16 0;
    cost = Array.make 16 0;
    narcs = 0;
    out = Array.make n [];
    pot = Array.make n 0;
    original = [];
  }

let grow net =
  let len = Array.length net.head in
  if net.narcs + 2 > len then begin
    let len' = 2 * len in
    let copy a def =
      let b = Array.make len' def in
      Array.blit a 0 b 0 len;
      b
    in
    net.head <- copy net.head 0;
    net.cap <- copy net.cap 0;
    net.cost <- copy net.cost 0
  end

let add_arc net ~src ~dst ~cap ~cost =
  if cap < 0 || cost < 0 then invalid_arg "Mincost_flow.add_arc: negative cap/cost";
  if src < 0 || src >= net.n || dst < 0 || dst >= net.n then
    invalid_arg "Mincost_flow.add_arc: node out of range";
  grow net;
  let a = net.narcs in
  net.head.(a) <- dst;
  net.cap.(a) <- cap;
  net.cost.(a) <- cost;
  net.head.(a + 1) <- src;
  net.cap.(a + 1) <- 0;
  net.cost.(a + 1) <- -cost;
  net.out.(src) <- a :: net.out.(src);
  net.out.(dst) <- (a + 1) :: net.out.(dst);
  net.narcs <- net.narcs + 2;
  net.original <- a :: net.original

module Heap = Heap.Make (Int)

let augment_unit net ~s ~t_ =
  let inf = max_int / 4 in
  let dist = Array.make net.n inf in
  let prev_arc = Array.make net.n (-1) in
  let heap = Heap.create () in
  dist.(s) <- 0;
  Heap.push heap 0 s;
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if d <= dist.(u) then
          List.iter
            (fun a ->
              if net.cap.(a) > 0 then begin
                let v = net.head.(a) in
                let rc = net.cost.(a) + net.pot.(u) - net.pot.(v) in
                (* reduced costs are non-negative by induction on augmentations *)
                let nd = d + rc in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  prev_arc.(v) <- a;
                  Heap.push heap nd v
                end
              end)
            net.out.(u);
        drain ()
  in
  drain ();
  if dist.(t_) >= inf then None
  else begin
    (* Unreachable nodes take the sink's label so reduced costs stay
       non-negative on every residual arc in later iterations. *)
    let dt = dist.(t_) in
    for v = 0 to net.n - 1 do
      net.pot.(v) <- net.pot.(v) + (if dist.(v) < inf then dist.(v) else dt)
    done;
    (* trace back, pushing one unit and accumulating the real cost *)
    let real_cost = ref 0 in
    let v = ref t_ in
    while !v <> s do
      let a = prev_arc.(!v) in
      net.cap.(a) <- net.cap.(a) - 1;
      net.cap.(a lxor 1) <- net.cap.(a lxor 1) + 1;
      real_cost := !real_cost + net.cost.(a);
      v := net.head.(a lxor 1)
    done;
    Some !real_cost
  end

let min_cost_units net ~s ~t_ ~max_units =
  let rec loop i acc =
    if i >= max_units then List.rev acc
    else
      match augment_unit net ~s ~t_ with
      | None -> List.rev acc
      | Some c -> loop (i + 1) (c :: acc)
  in
  loop 0 []

let flow_on net ~arc =
  let ids = Array.of_list (List.rev net.original) in
  if arc < 0 || arc >= Array.length ids then invalid_arg "Mincost_flow.flow_on";
  net.cap.(ids.(arc) lxor 1)

let arcs_with_flow net =
  List.rev_map
    (fun a ->
      let flow = net.cap.(a lxor 1) in
      (net.head.(a lxor 1), net.head.(a), flow))
    net.original
  |> List.filter (fun (_, _, f) -> f > 0)
