(** Maximum bipartite matching (Kuhn's augmenting paths).

    Used by the k-connecting dominating-tree induction checker: the
    existence of k internally disjoint depth-2 tree paths from a root
    to k neighbors of a target reduces to matching targets against
    relay vertices. *)

val max_matching : left:int -> right:int -> (int * int) list -> (int * int) list
(** [max_matching ~left ~right edges] computes a maximum matching of
    the bipartite graph with left vertices [0..left-1], right vertices
    [0..right-1] and the given (left, right) edges. Returns the matched
    pairs. *)

val matching_size : left:int -> right:int -> (int * int) list -> int
