(** Breadth-first search and distance utilities.

    Distances use [-1] for "unreachable". Traversals run directly over
    the graph's CSR layout ({!Graph.csr}) — nothing rebuilds an
    adjacency structure per call. The array-returning functions below
    allocate only their result; the underlying queue/distance/visited
    state lives in a domain-local {!Scratch.t} that is reused across
    calls. Algorithms that need many traversals (one per node) should
    hold their own {!Scratch.t} and use the in-place API — reuse then
    costs O(touched) per run, not O(n). A few variants operate on raw
    adjacency arrays ([int array array]) so they apply to materialized
    sub-graphs ({!Edge_set.to_adjacency}).

    See docs/PERFORMANCE.md for the scratch-reuse contract. *)

val record_traversal : int -> unit
(** [record_traversal expanded] ticks the [bfs/runs] counter, adds
    [expanded] to [bfs/expansions] and observes [bfs/visited] — the
    bookkeeping every traversal in this module performs. Exposed so
    alternative engines ({!Msbfs}) producing the same logical
    traversals keep the metrics contract. *)

(** Growable generation-stamped vertex sets: [clear] is O(1), [set] and
    [mem] are O(1). For algorithms layered on a traversal that need a
    reusable "seen/dead" set without O(n) clearing. *)
module Marks : sig
  type t

  val create : unit -> t
  val clear : t -> unit
  val set : t -> int -> unit
  val mem : t -> int -> bool
end

(** Reusable BFS state. A [Scratch.t] may be reused across graphs of
    any size (it grows, never shrinks) but must not be shared between
    domains or used re-entrantly: one traversal at a time, and the
    accessors below read the {e most recent} run only. The [Parallel]
    module keeps one per domain; sequential constructions keep one per
    entry point. *)
module Scratch : sig
  type t

  val create : unit -> t

  val run : ?radius:int -> t -> Graph.t -> int -> unit
  (** [run s g src] performs one BFS from [src], computing distances
      and canonical parents in a single traversal. The parent of [v]
      is its {e smallest-id} neighbor at distance [d(v) - 1] — a
      function of the graph alone, so every engine (including the
      batched {!Msbfs}) produces identical trees. With [~radius],
      exploration stops at that depth. Records one [bfs/runs] tick. *)

  val run_adj : ?radius:int -> t -> int array array -> int -> unit
  (** Same over a raw adjacency structure. *)

  val run_augmented : t -> Graph.t -> int array array -> int -> unit
  (** In-place version of {!augmented_dist}: distances [d_{H_u}(u, ·)]
      where the BFS is seeded with [N_G(src)] at distance 1 and expands
      through [h_adj] alone. The source itself is reported reached at
      distance 0 but does not appear in the visit order. *)

  val reached : t -> int -> bool
  (** Was this vertex reached by the most recent run? *)

  val dist : t -> int -> int
  (** Distance from the last run's source; [-1] if unreached. *)

  val parent : t -> int -> int
  (** BFS parent from the last run ([parent s src = src]); [-1] if
      unreached. *)

  val visited_count : t -> int
  (** Number of vertices enqueued by the last run. *)

  val visited : t -> int -> int
  (** [visited s i] is the [i]-th vertex in visit order,
      [0 <= i < visited_count s]. *)

  val iter_visited : t -> (int -> unit) -> unit
  (** Iterate the last run's vertices in visit order (increasing
      distance; within a level, discovery order). *)

  val marks : t -> Marks.t
  (** A general-purpose {!Marks.t} co-located with the scratch for the
      algorithm running on top of it. BFS itself never touches it. *)
end

val dist_adj : ?radius:int -> int array array -> int -> int array
(** [dist_adj adj src] is the array of BFS distances from [src] over
    the adjacency structure [adj]. With [~radius], exploration stops at
    that depth (farther vertices read [-1]). *)

val dist : ?radius:int -> Graph.t -> int -> int array
(** BFS distances in a graph. Allocates the result array only. *)

val dist_pair : ?radius:int -> Graph.t -> int -> int -> int
(** [dist_pair g u v] is [d_G(u, v)], [-1] if disconnected. Early-exits
    when [v] is reached. With [~radius], gives up ([-1]) beyond that
    depth. Records a [bfs/runs] tick even on the [u = v] early return,
    so traversal counts stay consistent. *)

val parents_adj : ?radius:int -> int array array -> int -> int array
(** BFS parent array from [src]: [parents.(src) = src], [-1] for
    unreached vertices; otherwise a neighbor one step closer to [src].
    The neighbor of smallest index is chosen, making the BFS tree
    deterministic. *)

val parents : ?radius:int -> Graph.t -> int -> int array

val ball : Graph.t -> int -> int -> int array
(** [ball g u r] = vertices at distance <= r from [u] (including [u]),
    in increasing distance order (ties by vertex id). *)

val sphere : Graph.t -> int -> int -> int array
(** [sphere g u r] = vertices at distance exactly [r] from [u], in
    increasing id order. *)

val ecc : Graph.t -> int -> int
(** Eccentricity of a vertex within its component. *)

val diameter : Graph.t -> int
(** Exact diameter (max eccentricity over the largest structure); [-1]
    when the graph is disconnected, 0 for graphs with <= 1 vertex. *)

val augmented_dist : Graph.t -> int array array -> int -> int array
(** [augmented_dist g h_adj u] computes the distances [d_{H_u}(u, ·)]
    where [H_u] is the sub-graph with adjacency [h_adj] augmented by all
    edges between [u] and its neighbors in [g]. A simple path from [u]
    uses at most one edge incident to [u], so seeding the BFS with
    [N_G(u)] at distance 1 and expanding through [h_adj] alone is exact.
    This is the distance notion in the remote-spanner definition. *)
