(** Breadth-first search and distance utilities.

    Distances use [-1] for "unreachable". Several variants operate on
    raw adjacency arrays ([int array array]) so they apply both to full
    graphs ({!Graph.neighbors}) and to materialized sub-graphs
    ({!Edge_set.to_adjacency}). *)

val dist_adj : ?radius:int -> int array array -> int -> int array
(** [dist_adj adj src] is the array of BFS distances from [src] over
    the adjacency structure [adj]. With [~radius], exploration stops at
    that depth (farther vertices read [-1]). *)

val dist : ?radius:int -> Graph.t -> int -> int array
(** BFS distances in a graph. *)

val dist_pair : Graph.t -> int -> int -> int
(** [dist_pair g u v] is [d_G(u, v)], [-1] if disconnected. Early-exits
    when [v] is reached. *)

val parents_adj : ?radius:int -> int array array -> int -> int array
(** BFS parent array from [src]: [parents.(src) = src], [-1] for
    unreached vertices; otherwise a neighbor one step closer to [src].
    The neighbor of smallest index is chosen, making the BFS tree
    deterministic. *)

val parents : ?radius:int -> Graph.t -> int -> int array

val ball : Graph.t -> int -> int -> int array
(** [ball g u r] = vertices at distance <= r from [u] (including [u]),
    in increasing distance order (ties by vertex id). *)

val sphere : Graph.t -> int -> int -> int array
(** [sphere g u r] = vertices at distance exactly [r] from [u]. *)

val ecc : Graph.t -> int -> int
(** Eccentricity of a vertex within its component. *)

val diameter : Graph.t -> int
(** Exact diameter (max eccentricity over the largest structure); [-1]
    when the graph is disconnected, 0 for graphs with <= 1 vertex. *)

val augmented_dist : Graph.t -> int array array -> int -> int array
(** [augmented_dist g h_adj u] computes the distances [d_{H_u}(u, ·)]
    where [H_u] is the sub-graph with adjacency [h_adj] augmented by all
    edges between [u] and its neighbors in [g]. A simple path from [u]
    uses at most one edge incident to [u], so seeding the BFS with
    [N_G(u)] at distance 1 and expanding through [h_adj] alone is exact.
    This is the distance notion in the remote-spanner definition. *)
