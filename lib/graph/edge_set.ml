type t = { g : Graph.t; bits : Bytes.t; mutable card : int }

let nbytes m = (m + 7) / 8

let create g = { g; bits = Bytes.make (nbytes (Graph.m g)) '\000'; card = 0 }

let host s = s.g

let get_bit s id = Char.code (Bytes.get s.bits (id lsr 3)) land (1 lsl (id land 7)) <> 0

let set_bit s id =
  let byte = id lsr 3 in
  Bytes.set s.bits byte (Char.chr (Char.code (Bytes.get s.bits byte) lor (1 lsl (id land 7))))

let clear_bit s id =
  let byte = id lsr 3 in
  Bytes.set s.bits byte
    (Char.chr (Char.code (Bytes.get s.bits byte) land lnot (1 lsl (id land 7)) land 0xff))

let full g =
  let s = create g in
  for id = 0 to Graph.m g - 1 do
    set_bit s id
  done;
  s.card <- Graph.m g;
  s

let copy s = { g = s.g; bits = Bytes.copy s.bits; card = s.card }

let add_id s id =
  if not (get_bit s id) then begin
    set_bit s id;
    s.card <- s.card + 1
  end

let add s u v = add_id s (Graph.edge_id s.g u v)

let remove s u v =
  match Graph.edge_id s.g u v with
  | id ->
      if get_bit s id then begin
        clear_bit s id;
        s.card <- s.card - 1
      end
  | exception Not_found -> ()

let mem_id s id = get_bit s id

let mem s u v =
  match Graph.edge_id s.g u v with
  | id -> get_bit s id
  | exception Not_found -> false

let cardinal s = s.card

let union_into dst src =
  if not (dst.g == src.g || Graph.equal dst.g src.g) then
    invalid_arg "Edge_set.union_into: different host graphs";
  for id = 0 to Graph.m src.g - 1 do
    if get_bit src id then add_id dst id
  done

let iter f s =
  for id = 0 to Graph.m s.g - 1 do
    if get_bit s id then
      let u, v = Graph.edge s.g id in
      f u v
  done

let to_list s =
  let acc = ref [] in
  iter (fun u v -> acc := (u, v) :: !acc) s;
  List.rev !acc

let to_adjacency s =
  let n = Graph.n s.g in
  let deg = Array.make n 0 in
  iter
    (fun u v ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    s;
  let adj = Array.init n (fun u -> Array.make deg.(u) 0) in
  let fill = Array.make n 0 in
  iter
    (fun u v ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    s;
  Array.iter (fun a -> Array.sort Int.compare a) adj;
  adj

let to_graph s = Graph.make ~n:(Graph.n s.g) (to_list s)

let subset a b =
  if Graph.m a.g <> Graph.m b.g then invalid_arg "Edge_set.subset: different hosts";
  let ok = ref true in
  for id = 0 to Graph.m a.g - 1 do
    if get_bit a id && not (get_bit b id) then ok := false
  done;
  !ok

let equal a b = a.card = b.card && subset a b

let pp fmt s =
  Format.fprintf fmt "@[<hov>{%d edges:@ " s.card;
  iter (fun u v -> Format.fprintf fmt "(%d,%d)@ " u v) s;
  Format.fprintf fmt "}@]"
