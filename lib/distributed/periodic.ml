module Graph = Rs_graph.Graph
module Tree = Rs_graph.Tree
module Obs = Rs_obs.Obs
module Trace = Rs_obs.Trace
module Json = Rs_obs.Json

let c_originations = Obs.counter "periodic/originations"
let c_recomputes = Obs.counter "periodic/recomputes"
let c_expirations = Obs.counter "periodic/expirations"
let c_crashes = Obs.counter "fault/crashes"
let c_recoveries = Obs.counter "fault/recoveries"
let h_convergence_lag = Obs.histogram "periodic/convergence_lag"
let h_round_messages = Obs.histogram "periodic/round_messages"

type event = { at : int; add : (int * int) list; remove : (int * int) list }

type result = {
  converged_at : int option;
  matched : bool array;
  messages : int;
  lost : int;
  quiet_at : int;
  incremental_mismatches : int;
}

type entry = { seq : int; nbrs : int array; heard_at : int }

type msg = { origin : int; mseq : int; mnbrs : int array; ttl : int }

let canonical (a, b) = if a < b then (a, b) else (b, a)

module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let apply_events g events t =
  List.fold_left
    (fun g ev ->
      if ev.at <> t then g
      else begin
        let removals = List.map canonical ev.remove in
        let kept =
          Graph.fold_edges
            (fun acc a b -> if List.mem (canonical (a, b)) removals then acc else (a, b) :: acc)
            [] g
        in
        Graph.make ~n:(Graph.n g) (List.rev_append ev.add kept)
      end)
    g events

let check_events_sorted events =
  let rec scan i = function
    | a :: (b :: _ as rest) ->
        if a.at > b.at then
          invalid_arg
            (Printf.sprintf
               "Periodic.simulate: events not sorted by at: events %d and %d \
                have at = %d > %d"
               i (i + 1) a.at b.at);
        scan (i + 1) rest
    | _ -> ()
  in
  scan 0 events

(* Build u's view graph from its cache (OR rule over advertised lists,
   own adjacency always fresh), renumbered; returns tree edges in
   global ids. *)
let recompute_tree ~tree_of g cache u =
  let lists = Hashtbl.create 16 in
  Hashtbl.iter (fun origin e -> Hashtbl.replace lists origin e.nbrs) cache;
  Hashtbl.replace lists u (Graph.neighbors g u);
  let verts = Hashtbl.create 32 in
  Hashtbl.iter
    (fun origin nbrs ->
      Hashtbl.replace verts origin ();
      Array.iter (fun w -> Hashtbl.replace verts w ()) nbrs)
    lists;
  let vs = Array.of_list (List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) verts [])) in
  let fwd = Hashtbl.create (Array.length vs) in
  Array.iteri (fun i v -> Hashtbl.replace fwd v i) vs;
  let edges = ref [] in
  Hashtbl.iter
    (fun origin nbrs ->
      let o = Hashtbl.find fwd origin in
      Array.iter (fun w -> edges := (o, Hashtbl.find fwd w) :: !edges) nbrs)
    lists;
  let local = Graph.make ~n:(Array.length vs) !edges in
  let t_local = tree_of local (Hashtbl.find fwd u) in
  let by_depth =
    List.sort
      (fun (p1, _) (p2, _) -> compare (Tree.depth t_local p1, p1) (Tree.depth t_local p2, p2))
      (Tree.edges t_local)
  in
  List.map (fun (p, c) -> canonical (vs.(p), vs.(c))) by_depth

let simulate ?trace ?faults ?expiry ?incremental ~initial ~events ~period ~radius
    ~horizon ~tree_of () =
  if period < 1 || radius < 1 then invalid_arg "Periodic.simulate: period, radius >= 1";
  let expiry = match expiry with Some e -> e | None -> 2 * period in
  if expiry < 1 then invalid_arg "Periodic.simulate: expiry >= 1";
  check_events_sorted events;
  Obs.with_span "periodic/simulate" @@ fun () ->
  let tracing = trace <> None in
  let emit fields = Option.iter (fun sink -> Trace.emit sink fields) trace in
  let n = Graph.n initial in
  let caches = Array.init n (fun _ -> (Hashtbl.create 16 : (int, entry) Hashtbl.t)) in
  let trees = Array.make n [] in
  let dirty = Array.make n true in
  let seqs = Array.make n 0 in
  let inboxes = Array.make n ([] : msg list) in
  let outboxes = Array.make n ([] : msg list) in
  let messages = ref 0 in
  let matched = Array.make horizon false in
  let g = ref initial in
  (* fault machinery; inert when [faults] is absent *)
  let fstate = Option.map Fault.start faults in
  let up = Array.make n true in
  let lost = ref 0 in
  let incremental_mismatches = ref 0 in
  (* delayed advertisement copies: delivery round -> (dst, msg), reversed *)
  let pending : (int, (int * msg) list) Hashtbl.t = Hashtbl.create 16 in
  let schedule at entry =
    Hashtbl.replace pending at
      (entry :: Option.value ~default:[] (Hashtbl.find_opt pending at))
  in
  let trace_drop t u v reason =
    incr lost;
    if tracing then
      emit
        [ ("ev", Json.String "drop"); ("round", Json.Int t); ("from", Json.Int u);
          ("to", Json.Int v); ("reason", Json.String reason) ]
  in
  let sync_liveness t =
    Option.iter
      (fun fs ->
        for u = 0 to n - 1 do
          let alive = Fault.node_up fs ~round:t u in
          if alive <> up.(u) then begin
            up.(u) <- alive;
            if alive then begin
              Obs.incr c_recoveries;
              (* recovered nodes rebuild from whatever survives expiry *)
              dirty.(u) <- true;
              if tracing then
                emit [ ("ev", Json.String "recover"); ("round", Json.Int t);
                       ("node", Json.Int u) ]
            end
            else begin
              Obs.incr c_crashes;
              outboxes.(u) <- [];
              if tracing then
                emit [ ("ev", Json.String "crash"); ("round", Json.Int t);
                       ("node", Json.Int u) ]
            end
          end
        done)
      fstate
  in
  let target_cache = Hashtbl.create 4 in
  let target g =
    (* memoize per distinct graph (few event epochs) *)
    let key = Graph.edges g in
    match Hashtbl.find_opt target_cache key with
    | Some s -> s
    | None ->
        let s =
          Graph.fold_vertices
            (fun acc u ->
              List.fold_left
                (fun acc e -> Pair_set.add e acc)
                acc
                (List.map canonical (Tree.edges (tree_of g u))))
            Pair_set.empty g
        in
        Hashtbl.replace target_cache key s;
        s
  in
  for t = 0 to horizon - 1 do
    if tracing then emit [ ("ev", Json.String "round_start"); ("round", Json.Int t) ];
    sync_liveness t;
    let messages_before = !messages in
    (* 1. topology events *)
    g := apply_events !g events t;
    let gt = !g in
    (* neighbor-change detection is immediate for the node's own view *)
    for u = 0 to n - 1 do
      dirty.(u) <- true
    done;
    (* 2. deliver messages sent last round (edges evaluated now) *)
    (match fstate with
    | None ->
        Array.iteri
          (fun u msgs ->
            List.iter
              (fun m ->
                Array.iter
                  (fun v ->
                    incr messages;
                    inboxes.(v) <- m :: inboxes.(v))
                  (Graph.neighbors gt u))
              msgs)
          outboxes
    | Some fs ->
        (* delayed copies first, re-checking the receiver now *)
        (match Hashtbl.find_opt pending t with
        | None -> ()
        | Some entries ->
            Hashtbl.remove pending t;
            List.iter
              (fun (v, m) ->
                if up.(v) then begin
                  incr messages;
                  inboxes.(v) <- m :: inboxes.(v)
                end
                else trace_drop t m.origin v "crash")
              (List.rev entries));
        Array.iteri
          (fun u msgs ->
            List.iter
              (fun m ->
                Array.iter
                  (fun v ->
                    if not up.(u) then trace_drop t u v "crash"
                    else if not up.(v) then trace_drop t u v "crash"
                    else if not (Fault.link_up fs ~round:t u v) then
                      trace_drop t u v "link"
                    else
                      match Fault.transmit fs ~round:t with
                      | Fault.Dropped -> trace_drop t u v "loss"
                      | Fault.Deliver delays ->
                          if List.length delays > 1 then begin
                            if tracing then
                              emit
                                [ ("ev", Json.String "dup"); ("round", Json.Int t);
                                  ("from", Json.Int u); ("to", Json.Int v) ]
                          end;
                          List.iter
                            (fun d ->
                              if d = 0 then begin
                                incr messages;
                                inboxes.(v) <- m :: inboxes.(v)
                              end
                              else schedule (t + d) (v, m))
                            delays)
                  (Graph.neighbors gt u))
              msgs)
          outboxes);
    Array.fill outboxes 0 n [];
    (* 3. process inboxes: cache updates + forwarding; advertisement
       dedup is by (origin, seq), so duplicated and reordered copies
       are absorbed here: a copy that is not strictly fresher than the
       cached entry is neither stored nor forwarded *)
    for u = 0 to n - 1 do
      if up.(u) then
        List.iter
          (fun m ->
            if m.origin <> u then begin
              let fresher =
                match Hashtbl.find_opt caches.(u) m.origin with
                | Some e -> m.mseq > e.seq
                | None -> true
              in
              if fresher then begin
                Hashtbl.replace caches.(u) m.origin
                  { seq = m.mseq; nbrs = m.mnbrs; heard_at = t };
                dirty.(u) <- true;
                if m.ttl > 1 then outboxes.(u) <- { m with ttl = m.ttl - 1 } :: outboxes.(u)
              end
            end)
          inboxes.(u);
      inboxes.(u) <- []
    done;
    (* 4. periodic origination (crashed nodes stay silent — their
       cached advertisements at peers age out below) *)
    for u = 0 to n - 1 do
      if up.(u) && t mod period = u mod period then begin
        seqs.(u) <- seqs.(u) + 1;
        Obs.incr c_originations;
        if tracing then
          emit
            [
              ("ev", Json.String "originate");
              ("round", Json.Int t);
              ("node", Json.Int u);
              ("seq", Json.Int seqs.(u));
            ];
        outboxes.(u) <-
          { origin = u; mseq = seqs.(u); mnbrs = Graph.neighbors gt u; ttl = radius }
          :: outboxes.(u)
      end
    done;
    (* 5. soft-state expiry *)
    for u = 0 to n - 1 do
      if up.(u) then begin
        let stale =
          Hashtbl.fold
            (fun origin e acc -> if t - e.heard_at > expiry then origin :: acc else acc)
            caches.(u) []
        in
        if stale <> [] then begin
          Obs.add c_expirations (List.length stale);
          if tracing then
            List.iter
              (fun origin ->
                emit
                  [
                    ("ev", Json.String "expire");
                    ("round", Json.Int t);
                    ("node", Json.Int u);
                    ("origin", Json.Int origin);
                  ])
              stale;
          List.iter (Hashtbl.remove caches.(u)) stale;
          dirty.(u) <- true
        end
      end
    done;
    (* 6. recompute dirty trees (crashed nodes keep their stale tree
       but it is excluded from the union below) *)
    for u = 0 to n - 1 do
      if up.(u) && dirty.(u) then begin
        Obs.incr c_recomputes;
        trees.(u) <- recompute_tree ~tree_of gt caches.(u) u;
        dirty.(u) <- false
      end
    done;
    (* 7. observe *)
    let union = ref Pair_set.empty in
    for u = 0 to n - 1 do
      if up.(u) then
        union := List.fold_left (fun acc e -> Pair_set.add e acc) !union trees.(u)
    done;
    matched.(t) <- Pair_set.equal !union (target gt);
    (* the incrementally maintained centralized spanner must agree
       with the memoized from-scratch target on every epoch *)
    (match incremental with
    | None -> ()
    | Some maintain ->
        let inc = List.fold_left (fun acc e -> Pair_set.add (canonical e) acc)
            Pair_set.empty (maintain gt)
        in
        if not (Pair_set.equal inc (target gt)) then begin
          incr incremental_mismatches;
          if tracing then
            emit [ ("ev", Json.String "incremental_mismatch"); ("round", Json.Int t) ]
        end);
    Obs.observe h_round_messages (float_of_int (!messages - messages_before));
    if tracing then
      emit
        [
          ("ev", Json.String "round_end");
          ("round", Json.Int t);
          ("messages", Json.Int (!messages - messages_before));
          ("matched", Json.Bool matched.(t));
        ]
  done;
  let last_event = List.fold_left (fun acc ev -> max acc ev.at) 0 events in
  let quiet_at =
    match faults with
    | None -> last_event
    | Some p -> max last_event (Fault.quiet_at p)
  in
  let converged_at =
    let rec scan best t =
      if t < quiet_at then best
      else if matched.(t) then scan (Some t) (t - 1)
      else best
    in
    if horizon = 0 || quiet_at = max_int then None else scan None (horizon - 1)
  in
  Option.iter
    (fun t -> Obs.observe h_convergence_lag (float_of_int (t - quiet_at)))
    converged_at;
  {
    converged_at;
    matched;
    messages = !messages;
    lost = !lost;
    quiet_at;
    incremental_mismatches = !incremental_mismatches;
  }

let stabilization_lag res =
  match res.converged_at with
  | Some t when res.quiet_at <= t -> Some (t - res.quiet_at)
  | _ -> None

let self_stabilizes res ~bound =
  match stabilization_lag res with Some lag -> lag <= bound | None -> false
