module Graph = Rs_graph.Graph
module Tree = Rs_graph.Tree
module Obs = Rs_obs.Obs
module Trace = Rs_obs.Trace
module Json = Rs_obs.Json

let c_originations = Obs.counter "periodic/originations"
let c_recomputes = Obs.counter "periodic/recomputes"
let c_expirations = Obs.counter "periodic/expirations"

type event = { at : int; add : (int * int) list; remove : (int * int) list }

type result = { converged_at : int option; matched : bool array; messages : int }

type entry = { seq : int; nbrs : int array; heard_at : int }

type msg = { origin : int; mseq : int; mnbrs : int array; ttl : int }

let canonical (a, b) = if a < b then (a, b) else (b, a)

module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let apply_events g events t =
  List.fold_left
    (fun g ev ->
      if ev.at <> t then g
      else begin
        let removals = List.map canonical ev.remove in
        let kept =
          Graph.fold_edges
            (fun acc a b -> if List.mem (canonical (a, b)) removals then acc else (a, b) :: acc)
            [] g
        in
        Graph.make ~n:(Graph.n g) (List.rev_append ev.add kept)
      end)
    g events

(* Build u's view graph from its cache (OR rule over advertised lists,
   own adjacency always fresh), renumbered; returns tree edges in
   global ids. *)
let recompute_tree ~tree_of g cache u =
  let lists = Hashtbl.create 16 in
  Hashtbl.iter (fun origin e -> Hashtbl.replace lists origin e.nbrs) cache;
  Hashtbl.replace lists u (Graph.neighbors g u);
  let verts = Hashtbl.create 32 in
  Hashtbl.iter
    (fun origin nbrs ->
      Hashtbl.replace verts origin ();
      Array.iter (fun w -> Hashtbl.replace verts w ()) nbrs)
    lists;
  let vs = Array.of_list (List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) verts [])) in
  let fwd = Hashtbl.create (Array.length vs) in
  Array.iteri (fun i v -> Hashtbl.replace fwd v i) vs;
  let edges = ref [] in
  Hashtbl.iter
    (fun origin nbrs ->
      let o = Hashtbl.find fwd origin in
      Array.iter (fun w -> edges := (o, Hashtbl.find fwd w) :: !edges) nbrs)
    lists;
  let local = Graph.make ~n:(Array.length vs) !edges in
  let t_local = tree_of local (Hashtbl.find fwd u) in
  let by_depth =
    List.sort
      (fun (p1, _) (p2, _) -> compare (Tree.depth t_local p1, p1) (Tree.depth t_local p2, p2))
      (Tree.edges t_local)
  in
  List.map (fun (p, c) -> canonical (vs.(p), vs.(c))) by_depth

let simulate ?trace ~initial ~events ~period ~radius ~horizon ~tree_of () =
  if period < 1 || radius < 1 then invalid_arg "Periodic.simulate: period, radius >= 1";
  Obs.with_span "periodic/simulate" @@ fun () ->
  let tracing = trace <> None in
  let emit fields = Option.iter (fun sink -> Trace.emit sink fields) trace in
  let n = Graph.n initial in
  let expiry = 2 * period in
  let caches = Array.init n (fun _ -> (Hashtbl.create 16 : (int, entry) Hashtbl.t)) in
  let trees = Array.make n [] in
  let dirty = Array.make n true in
  let seqs = Array.make n 0 in
  let inboxes = Array.make n ([] : msg list) in
  let outboxes = Array.make n ([] : msg list) in
  let messages = ref 0 in
  let matched = Array.make horizon false in
  let g = ref initial in
  let target_cache = Hashtbl.create 4 in
  let target g =
    (* memoize per distinct graph (few event epochs) *)
    let key = Graph.edges g in
    match Hashtbl.find_opt target_cache key with
    | Some s -> s
    | None ->
        let s =
          Graph.fold_vertices
            (fun acc u ->
              List.fold_left
                (fun acc e -> Pair_set.add e acc)
                acc
                (List.map canonical (Tree.edges (tree_of g u))))
            Pair_set.empty g
        in
        Hashtbl.replace target_cache key s;
        s
  in
  for t = 0 to horizon - 1 do
    if tracing then emit [ ("ev", Json.String "round_start"); ("round", Json.Int t) ];
    let messages_before = !messages in
    (* 1. topology events *)
    g := apply_events !g events t;
    let gt = !g in
    (* neighbor-change detection is immediate for the node's own view *)
    for u = 0 to n - 1 do
      dirty.(u) <- true
    done;
    (* 2. deliver messages sent last round (edges evaluated now) *)
    Array.iteri
      (fun u msgs ->
        List.iter
          (fun m ->
            Array.iter
              (fun v ->
                incr messages;
                inboxes.(v) <- m :: inboxes.(v))
              (Graph.neighbors gt u))
          msgs)
      outboxes;
    Array.fill outboxes 0 n [];
    (* 3. process inboxes: cache updates + forwarding *)
    for u = 0 to n - 1 do
      List.iter
        (fun m ->
          if m.origin <> u then begin
            let fresher =
              match Hashtbl.find_opt caches.(u) m.origin with
              | Some e -> m.mseq > e.seq
              | None -> true
            in
            if fresher then begin
              Hashtbl.replace caches.(u) m.origin
                { seq = m.mseq; nbrs = m.mnbrs; heard_at = t };
              dirty.(u) <- true;
              if m.ttl > 1 then outboxes.(u) <- { m with ttl = m.ttl - 1 } :: outboxes.(u)
            end
          end)
        inboxes.(u);
      inboxes.(u) <- []
    done;
    (* 4. periodic origination *)
    for u = 0 to n - 1 do
      if t mod period = u mod period then begin
        seqs.(u) <- seqs.(u) + 1;
        Obs.incr c_originations;
        if tracing then
          emit
            [
              ("ev", Json.String "originate");
              ("round", Json.Int t);
              ("node", Json.Int u);
              ("seq", Json.Int seqs.(u));
            ];
        outboxes.(u) <-
          { origin = u; mseq = seqs.(u); mnbrs = Graph.neighbors gt u; ttl = radius }
          :: outboxes.(u)
      end
    done;
    (* 5. soft-state expiry *)
    for u = 0 to n - 1 do
      let stale =
        Hashtbl.fold
          (fun origin e acc -> if t - e.heard_at > expiry then origin :: acc else acc)
          caches.(u) []
      in
      if stale <> [] then begin
        Obs.add c_expirations (List.length stale);
        if tracing then
          List.iter
            (fun origin ->
              emit
                [
                  ("ev", Json.String "expire");
                  ("round", Json.Int t);
                  ("node", Json.Int u);
                  ("origin", Json.Int origin);
                ])
            stale;
        List.iter (Hashtbl.remove caches.(u)) stale;
        dirty.(u) <- true
      end
    done;
    (* 6. recompute dirty trees *)
    for u = 0 to n - 1 do
      if dirty.(u) then begin
        Obs.incr c_recomputes;
        trees.(u) <- recompute_tree ~tree_of gt caches.(u) u;
        dirty.(u) <- false
      end
    done;
    (* 7. observe *)
    let union =
      Array.fold_left
        (fun acc es -> List.fold_left (fun acc e -> Pair_set.add e acc) acc es)
        Pair_set.empty trees
    in
    matched.(t) <- Pair_set.equal union (target gt);
    if tracing then
      emit
        [
          ("ev", Json.String "round_end");
          ("round", Json.Int t);
          ("messages", Json.Int (!messages - messages_before));
          ("matched", Json.Bool matched.(t));
        ]
  done;
  let last_event = List.fold_left (fun acc ev -> max acc ev.at) 0 events in
  let converged_at =
    let rec scan best t =
      if t < last_event then best
      else if matched.(t) then scan (Some t) (t - 1)
      else best
    in
    if horizon = 0 then None else scan None (horizon - 1)
  in
  { converged_at; matched; messages = !messages }
