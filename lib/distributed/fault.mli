(** Deterministic, seeded fault injection for the distributed stack.

    The paper's Section 2.3 argues Algorithm RemSpan suits practical
    link-state routing precisely because it is local and soft-state —
    claims that only mean something under the conditions that motivate
    soft state: message loss, duplication, delay, link flapping and
    node churn. A {!plan} describes such conditions declaratively;
    {!Sim.run}, {!Periodic.simulate} and [Churn_eval.run] accept one
    via their [?faults] argument and consult a running {!state} for
    every transmission.

    {b Determinism contract.} All stochastic decisions flow through a
    private splitmix64 stream seeded from [plan.seed] and advanced in
    a fixed order (one {!transmit} call per attempted transmission, in
    simulator delivery order). Two runs with equal plans and equal
    workloads make identical decisions — faulty runs are reproducible
    bit-for-bit from [--fault-seed]. Passing no plan at all leaves the
    host simulator byte-identical to its fault-free behaviour (no
    stream is created, no decision is drawn). *)

type crash = {
  node : int;
  at : int;  (** first round the node is down *)
  recover : int option;  (** first round it is back up; [None] = never *)
}

type flap = {
  u : int;
  v : int;  (** undirected link, order irrelevant *)
  down : int;  (** first round the link is down *)
  up : int;  (** first round it carries traffic again *)
}

type plan = {
  seed : int;
  drop : float;  (** per-transmission loss probability, [0..1] *)
  delay : int;  (** fixed extra delivery delay, rounds >= 0 *)
  jitter : int;  (** additional uniform delay in [0..jitter] *)
  dup : float;  (** per-transmission duplication probability, [0..1] *)
  until : int option;
      (** stochastic faults (drop/delay/jitter/dup) apply only to
          rounds [< until]; [None] = forever *)
  crashes : crash list;
  flaps : flap list;
}

val none : plan
(** The empty plan: nothing dropped, delayed, duplicated or crashed.
    Running under [Some none] is observationally identical to running
    with no plan. *)

val make :
  ?drop:float ->
  ?delay:int ->
  ?jitter:int ->
  ?dup:float ->
  ?until:int ->
  ?crashes:crash list ->
  ?flaps:flap list ->
  seed:int ->
  unit ->
  plan
(** Build a validated plan. Raises [Invalid_argument] when a
    probability is outside [0..1], a delay/jitter is negative, or a
    schedule interval is empty ([recover <= at], [up <= down]). *)

val is_none : plan -> bool
(** No stochastic component and no schedules. *)

val quiet_at : plan -> int
(** First round from which the plan can no longer interfere: the max
    of [until] (0 when no stochastic fault is configured), every crash
    [recover] and every flap [up]. [max_int] when faults never cease —
    an unbounded stochastic component ([until = None]) or an
    unrecovered crash; self-stabilization can then not be certified. *)

val last_transition : plan -> int
(** Last round at which a scheduled crash/recover or flap down/up
    transition occurs (0 for a schedule-free plan). Simulators keep
    running at least this long so scheduled events fire even after
    protocol quiescence. Unlike {!quiet_at} this ignores unbounded
    stochastic faults and treats an unrecovered crash as its [at]
    round (a dead node causes no further transitions). *)

(** {1 Runtime} *)

type state
(** A plan plus its random stream and indexed schedules. *)

val start : plan -> state

val plan_of : state -> plan

val node_up : state -> round:int -> int -> bool

val link_up : state -> round:int -> int -> int -> bool
(** Whether the (undirected) link carries traffic this round. *)

type outcome =
  | Dropped
  | Deliver of int list
      (** per-copy delivery delays: [[0]] is normal next-round
          delivery; two elements mean the message was duplicated *)

val transmit : state -> round:int -> outcome
(** Decide the fate of one transmission attempted in [round]. Advances
    the random stream (drop draw, then dup draw if [dup > 0], then one
    jitter draw per copy if [jitter > 0]); bumps the [fault/drops],
    [fault/dups] and [fault/delays] counters. Outside the [until]
    window this returns [Deliver [0]] without consuming randomness. *)

(** {1 Schedule files}

    A crash/flap schedule is a line-oriented text file ([#] comments
    and blank lines ignored):

    {v
    crash NODE AT [RECOVER]     # RECOVER omitted = never recovers
    flap  U V DOWN UP
    v} *)

val parse_schedule : string -> crash list * flap list
(** Parse schedule text. Raises [Failure] naming the offending line on
    malformed input. *)

val load_schedule : string -> crash list * flap list
(** [parse_schedule] over a file's contents. Raises [Sys_error] on I/O
    failure. *)
