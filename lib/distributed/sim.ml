module Graph = Rs_graph.Graph
module Obs = Rs_obs.Obs
module Trace = Rs_obs.Trace
module Json = Rs_obs.Json

type stats = {
  rounds : int;
  messages : int;
  payload : int;
  max_round_messages : int;
  max_round_payload : int;
  halted_nodes : int;
  dropped : int;
  duplicated : int;
  delayed : int;
}

let zero_stats =
  {
    rounds = 0;
    messages = 0;
    payload = 0;
    max_round_messages = 0;
    max_round_payload = 0;
    halted_nodes = 0;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
  }

type ('state, 'msg) protocol = {
  init : int -> 'state * (int * 'msg) list;
  step : int -> 'state -> inbox:(int * 'msg) list -> 'state * (int * 'msg) list;
  halted : 'state -> bool;
  msg_size : 'msg -> int;
}

let c_rounds = Obs.counter "sim/rounds"
let c_messages = Obs.counter "sim/messages"
let h_round_messages = Obs.histogram "sim/round_messages"
let h_round_payload = Obs.histogram "sim/round_payload"
let c_crashes = Obs.counter "fault/crashes"
let c_recoveries = Obs.counter "fault/recoveries"

let run ?trace ?faults g proto ~max_rounds =
  Obs.with_span "sim/run" @@ fun () ->
  let n = Graph.n g in
  let states = Array.make n None in
  let outboxes = Array.make n [] in
  let check_send ~round u (v, _msg) =
    if not (Graph.mem_edge g u v) then
      invalid_arg
        (Printf.sprintf "Sim.run: node %d sent to non-neighbor %d in round %d" u v
           round)
  in
  let was_halted = Array.make n false in
  let tracing = trace <> None in
  let emit fields = Option.iter (fun sink -> Trace.emit sink fields) trace in
  let trace_halt round u =
    if tracing then
      emit [ ("ev", Json.String "halt"); ("round", Json.Int round); ("node", Json.Int u) ]
  in
  (* fault machinery; all of it is inert when [faults] is absent *)
  let fstate = Option.map Fault.start faults in
  let fault_floor =
    match faults with None -> 0 | Some p -> Fault.last_transition p
  in
  let up = Array.make n true in
  let dropped = ref 0 and duplicated = ref 0 and delayed = ref 0 in
  (* delayed in-flight copies, delivery round -> (from, to, msg) in
     reverse insertion order *)
  let pending : (int, (int * int * 'msg) list) Hashtbl.t = Hashtbl.create 16 in
  let schedule at entry =
    Hashtbl.replace pending at
      (entry :: Option.value ~default:[] (Hashtbl.find_opt pending at))
  in
  let trace_drop round u v reason =
    incr dropped;
    if tracing then
      emit
        [ ("ev", Json.String "drop"); ("round", Json.Int round); ("from", Json.Int u);
          ("to", Json.Int v); ("reason", Json.String reason) ]
  in
  let sync_liveness round =
    Option.iter
      (fun fs ->
        for u = 0 to n - 1 do
          let alive = Fault.node_up fs ~round u in
          if alive <> up.(u) then begin
            up.(u) <- alive;
            if alive then begin
              Obs.incr c_recoveries;
              if tracing then
                emit [ ("ev", Json.String "recover"); ("round", Json.Int round);
                       ("node", Json.Int u) ]
            end
            else begin
              Obs.incr c_crashes;
              if tracing then
                emit [ ("ev", Json.String "crash"); ("round", Json.Int round);
                       ("node", Json.Int u) ]
            end
          end
        done)
      fstate
  in
  for u = 0 to n - 1 do
    let st, sends = proto.init u in
    List.iter (check_send ~round:0 u) sends;
    states.(u) <- Some st;
    outboxes.(u) <- sends;
    if proto.halted st then begin
      was_halted.(u) <- true;
      trace_halt 0 u
    end
  done;
  sync_liveness 0;
  let messages = ref 0 and payload = ref 0 and rounds = ref 0 in
  let max_round_messages = ref 0 and max_round_payload = ref 0 in
  let in_flight () =
    Array.exists (fun o -> o <> []) outboxes || Hashtbl.length pending > 0
  in
  let all_halted () =
    let done_ u = (not up.(u)) || match states.(u) with Some st -> proto.halted st | None -> true in
    let rec scan u = u >= n || (done_ u && scan (u + 1)) in
    scan 0
  in
  while
    !rounds < max_rounds
    && (in_flight () || not (all_halted ()) || !rounds < fault_floor)
  do
    incr rounds;
    let round = !rounds in
    sync_liveness round;
    if tracing then emit [ ("ev", Json.String "round_start"); ("round", Json.Int round) ];
    (* deliver *)
    let round_messages = ref 0 and round_payload = ref 0 in
    let inboxes = Array.make n [] in
    let deliver u v msg =
      incr messages;
      incr round_messages;
      let size = proto.msg_size msg in
      payload := !payload + size;
      round_payload := !round_payload + size;
      if tracing then
        emit
          [
            ("ev", Json.String "send");
            ("round", Json.Int round);
            ("from", Json.Int u);
            ("to", Json.Int v);
            ("size", Json.Int size);
          ];
      inboxes.(v) <- (u, msg) :: inboxes.(v)
    in
    (match fstate with
    | None ->
        Array.iteri
          (fun u sends -> List.iter (fun (v, msg) -> deliver u v msg) sends)
          outboxes
    | Some fs ->
        (* 1. delayed copies scheduled for this round, in insertion
           order; the receiver must be up at the actual delivery round *)
        (match Hashtbl.find_opt pending round with
        | None -> ()
        | Some entries ->
            Hashtbl.remove pending round;
            List.iter
              (fun (u, v, msg) ->
                if up.(v) then deliver u v msg else trace_drop round u v "crash")
              (List.rev entries));
        (* 2. fresh sends queued last round: the sender and receiver
           must be up and the link must carry traffic now *)
        Array.iteri
          (fun u sends ->
            List.iter
              (fun (v, msg) ->
                if not up.(u) then trace_drop round u v "crash"
                else if not up.(v) then trace_drop round u v "crash"
                else if not (Fault.link_up fs ~round u v) then
                  trace_drop round u v "link"
                else
                  match Fault.transmit fs ~round with
                  | Fault.Dropped -> trace_drop round u v "loss"
                  | Fault.Deliver delays ->
                      if List.length delays > 1 then begin
                        incr duplicated;
                        if tracing then
                          emit
                            [ ("ev", Json.String "dup"); ("round", Json.Int round);
                              ("from", Json.Int u); ("to", Json.Int v) ]
                      end;
                      List.iter
                        (fun d ->
                          if d = 0 then deliver u v msg
                          else begin
                            incr delayed;
                            schedule (round + d) (u, v, msg)
                          end)
                        delays)
              sends)
          outboxes);
    Array.fill outboxes 0 n [];
    Option.iter
      (fun sink ->
        Array.iteri
          (fun u inbox ->
            if inbox <> [] then
              Trace.emit sink
                [
                  ("ev", Json.String "recv");
                  ("round", Json.Int round);
                  ("node", Json.Int u);
                  ("count", Json.Int (List.length inbox));
                ])
          inboxes)
      trace;
    (* step: crashed nodes neither process their inbox nor send *)
    for u = 0 to n - 1 do
      match states.(u) with
      | None -> ()
      | Some st ->
          if up.(u) && (inboxes.(u) <> [] || not (proto.halted st)) then begin
            let st', sends = proto.step u st ~inbox:inboxes.(u) in
            List.iter (check_send ~round u) sends;
            states.(u) <- Some st';
            outboxes.(u) <- sends;
            let halted_now = proto.halted st' in
            if halted_now && not was_halted.(u) then trace_halt round u;
            was_halted.(u) <- halted_now
          end
    done;
    max_round_messages := max !max_round_messages !round_messages;
    max_round_payload := max !max_round_payload !round_payload;
    Obs.incr c_rounds;
    Obs.add c_messages !round_messages;
    Obs.observe h_round_messages (float_of_int !round_messages);
    Obs.observe h_round_payload (float_of_int !round_payload);
    if tracing then
      emit
        [
          ("ev", Json.String "round_end");
          ("round", Json.Int round);
          ("messages", Json.Int !round_messages);
          ("payload", Json.Int !round_payload);
        ]
  done;
  let final =
    Array.map (function Some st -> st | None -> assert false) states
  in
  let halted_nodes =
    Array.fold_left
      (fun acc st -> if proto.halted st then acc + 1 else acc)
      0 final
  in
  ( final,
    {
      rounds = !rounds;
      messages = !messages;
      payload = !payload;
      max_round_messages = !max_round_messages;
      max_round_payload = !max_round_payload;
      halted_nodes;
      dropped = !dropped;
      duplicated = !duplicated;
      delayed = !delayed;
    } )

(* Flooding collection: each node starts knowing its incident edges and
   floods newly learned edges for [radius] rounds; an edge learned in
   round r joins the knowledge of every node within distance r of one
   of its endpoints. A message is a batch of edges. *)
type collect_state = {
  known : (int * int, int) Hashtbl.t; (* edge -> round learned *)
  mutable round_no : int;
  budget : int;
}

let collect_neighborhoods ?trace ?faults g ~radius =
  if radius < 0 then invalid_arg "Sim.collect_neighborhoods: negative radius";
  let canonical u v = if u < v then (u, v) else (v, u) in
  let proto =
    {
      init =
        (fun u ->
          let known = Hashtbl.create 64 in
          Array.iter (fun v -> Hashtbl.replace known (canonical u v) 0) (Graph.neighbors g u);
          let st = { known; round_no = 0; budget = radius } in
          let batch = Hashtbl.fold (fun e _ acc -> e :: acc) known [] in
          let sends =
            if radius = 0 then []
            else Array.to_list (Array.map (fun v -> (v, batch)) (Graph.neighbors g u))
          in
          (st, sends));
      step =
        (fun u st ~inbox ->
          st.round_no <- st.round_no + 1;
          let fresh = ref [] in
          List.iter
            (fun (_, batch) ->
              List.iter
                (fun e ->
                  if not (Hashtbl.mem st.known e) then begin
                    Hashtbl.replace st.known e st.round_no;
                    fresh := e :: !fresh
                  end)
                batch)
            inbox;
          let sends =
            if st.round_no >= st.budget || !fresh = [] then []
            else
              Array.to_list
                (Array.map (fun v -> (v, !fresh)) (Graph.neighbors g u))
          in
          (st, sends));
      halted = (fun st -> st.round_no >= st.budget);
      msg_size = List.length;
    }
  in
  let states, stats = run ?trace ?faults g proto ~max_rounds:(radius + 1) in
  let views =
    Array.map
      (fun st ->
        Hashtbl.fold (fun (a, b) r acc -> (a, b, r) :: acc) st.known []
        |> List.sort compare |> Array.of_list)
      states
  in
  (views, stats)
