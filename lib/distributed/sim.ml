module Graph = Rs_graph.Graph

type stats = { rounds : int; messages : int; payload : int }

type ('state, 'msg) protocol = {
  init : int -> 'state * (int * 'msg) list;
  step : int -> 'state -> inbox:(int * 'msg) list -> 'state * (int * 'msg) list;
  halted : 'state -> bool;
  msg_size : 'msg -> int;
}

let run g proto ~max_rounds =
  let n = Graph.n g in
  let states = Array.make n None in
  let outboxes = Array.make n [] in
  let check_send u (v, _msg) =
    if not (Graph.mem_edge g u v) then
      invalid_arg
        (Printf.sprintf "Sim.run: node %d sent to non-neighbor %d" u v)
  in
  for u = 0 to n - 1 do
    let st, sends = proto.init u in
    List.iter (check_send u) sends;
    states.(u) <- Some st;
    outboxes.(u) <- sends
  done;
  let messages = ref 0 and payload = ref 0 and rounds = ref 0 in
  let in_flight () = Array.exists (fun o -> o <> []) outboxes in
  let all_halted () =
    Array.for_all (function Some st -> proto.halted st | None -> true) states
  in
  while !rounds < max_rounds && (in_flight () || not (all_halted ())) do
    incr rounds;
    (* deliver *)
    let inboxes = Array.make n [] in
    Array.iteri
      (fun u sends ->
        List.iter
          (fun (v, msg) ->
            incr messages;
            payload := !payload + proto.msg_size msg;
            inboxes.(v) <- (u, msg) :: inboxes.(v))
          sends)
      outboxes;
    Array.fill outboxes 0 n [];
    (* step *)
    for u = 0 to n - 1 do
      match states.(u) with
      | None -> ()
      | Some st ->
          if inboxes.(u) <> [] || not (proto.halted st) then begin
            let st', sends = proto.step u st ~inbox:inboxes.(u) in
            List.iter (check_send u) sends;
            states.(u) <- Some st';
            outboxes.(u) <- sends
          end
    done
  done;
  let final =
    Array.map (function Some st -> st | None -> assert false) states
  in
  (final, { rounds = !rounds; messages = !messages; payload = !payload })

(* Flooding collection: each node starts knowing its incident edges and
   floods newly learned edges for [radius] rounds; an edge learned in
   round r joins the knowledge of every node within distance r of one
   of its endpoints. A message is a batch of edges. *)
type collect_state = {
  known : (int * int, int) Hashtbl.t; (* edge -> round learned *)
  mutable round_no : int;
  budget : int;
}

let collect_neighborhoods g ~radius =
  if radius < 0 then invalid_arg "Sim.collect_neighborhoods: negative radius";
  let canonical u v = if u < v then (u, v) else (v, u) in
  let proto =
    {
      init =
        (fun u ->
          let known = Hashtbl.create 64 in
          Array.iter (fun v -> Hashtbl.replace known (canonical u v) 0) (Graph.neighbors g u);
          let st = { known; round_no = 0; budget = radius } in
          let batch = Hashtbl.fold (fun e _ acc -> e :: acc) known [] in
          let sends =
            if radius = 0 then []
            else Array.to_list (Array.map (fun v -> (v, batch)) (Graph.neighbors g u))
          in
          (st, sends));
      step =
        (fun u st ~inbox ->
          st.round_no <- st.round_no + 1;
          let fresh = ref [] in
          List.iter
            (fun (_, batch) ->
              List.iter
                (fun e ->
                  if not (Hashtbl.mem st.known e) then begin
                    Hashtbl.replace st.known e st.round_no;
                    fresh := e :: !fresh
                  end)
                batch)
            inbox;
          let sends =
            if st.round_no >= st.budget || !fresh = [] then []
            else
              Array.to_list
                (Array.map (fun v -> (v, !fresh)) (Graph.neighbors g u))
          in
          (st, sends));
      halted = (fun st -> st.round_no >= st.budget);
      msg_size = List.length;
    }
  in
  let states, stats = run g proto ~max_rounds:(radius + 1) in
  let views =
    Array.map
      (fun st ->
        Hashtbl.fold (fun (a, b) r acc -> (a, b, r) :: acc) st.known []
        |> List.sort compare |> Array.of_list)
      states
  in
  (views, stats)
