(** Synchronous message-passing (LOCAL-model) simulator.

    The paper's algorithms are distributed: in each round every node
    exchanges messages with its graph neighbors and updates local
    state. "Constant time" (Theorems 1-3) means a number of rounds
    independent of the graph — this simulator counts rounds, messages
    and abstract payload so experiment E9 can measure exactly that.

    A protocol is three callbacks over a user state type; messages are
    addressed to neighbor vertex ids and delivered at the start of the
    next round. The simulation stops when every node has halted or
    [max_rounds] is reached.

    An optional {!Fault.plan} subjects the run to deterministic,
    seeded adversity — message loss, duplication, delay, link flapping
    and node crash/recovery. Without a plan behaviour is byte-identical
    to the fault-free simulator. *)

type stats = {
  rounds : int;  (** rounds executed *)
  messages : int;  (** total messages delivered *)
  payload : int;  (** sum of user-defined message sizes *)
  max_round_messages : int;  (** busiest round's message count *)
  max_round_payload : int;  (** busiest round's payload *)
  halted_nodes : int;  (** nodes halted when the run stopped *)
  dropped : int;  (** transmissions lost to faults (loss, link, crash) *)
  duplicated : int;  (** transmissions that produced a second copy *)
  delayed : int;  (** copies delivered later than the next round *)
}

val zero_stats : stats
(** All-zero statistics (the no-rounds run). *)

type ('state, 'msg) protocol = {
  init : int -> 'state * (int * 'msg) list;
      (** [init u] gives node [u]'s initial state and its round-1
          sends, as (neighbor, message) pairs. *)
  step : int -> 'state -> inbox:(int * 'msg) list -> 'state * (int * 'msg) list;
      (** [step u st ~inbox] processes the messages delivered this
          round ((sender, message) pairs) and emits next-round sends. *)
  halted : 'state -> bool;
      (** A node halts when true and it has nothing queued; halted
          nodes still receive (their [step] keeps running if messages
          arrive). *)
  msg_size : 'msg -> int;  (** abstract payload size, for accounting *)
}

val run :
  ?trace:Rs_obs.Trace.sink ->
  ?faults:Fault.plan ->
  Rs_graph.Graph.t ->
  ('state, 'msg) protocol ->
  max_rounds:int ->
  'state array * stats
(** Run to quiescence (all live nodes halted, no messages in flight —
    {e including} copies whose delivery a fault plan delayed — and no
    scheduled crash/recover or flap transition still ahead) or
    [max_rounds]. Sends to non-neighbors raise [Invalid_argument]
    naming the offending round — the LOCAL model only talks over
    edges; the init phase counts as round 0.

    With [?faults] (see {!Fault}):
    - every transmission may be dropped, duplicated or delayed as the
      plan's seeded stream decides — runs are reproducible from the
      seed;
    - a message is lost when its sender or receiver is down or its
      link is flapped down at the delivery round; a {e delayed} copy
      re-checks only the receiver at its actual delivery round;
    - crashed nodes neither step nor send; on recovery a node resumes
      with the state it crashed with;
    - losses/duplicates/delays are tallied in [stats] and in the
      [fault/*] counters.

    With [?trace], one JSONL event per line is streamed to the sink:
    [round_start {round}], [send {round, from, to, size}] per
    delivered message, [recv {round, node, count}] per non-empty
    inbox, [halt {round, node}] on halting transitions,
    [round_end {round, messages, payload}] whose per-round message
    totals sum to the returned [stats.messages], and — under faults —
    [drop {round, from, to, reason}] (reason one of ["loss"],
    ["link"], ["crash"]), [dup {round, from, to}],
    [crash {round, node}] and [recover {round, node}]. See
    docs/OBSERVABILITY.md for the schema. *)

val collect_neighborhoods :
  ?trace:Rs_obs.Trace.sink ->
  ?faults:Fault.plan ->
  Rs_graph.Graph.t ->
  radius:int ->
  (int * int * int) array array * stats
(** The generic primitive behind Algorithm RemSpan: after [radius]
    flooding rounds each node knows every edge incident to its ball of
    radius [radius] — enough to rebuild [B_G(u, radius)] and run a
    dominating-tree computation locally. Returns, per node, the known
    edge list as (u, v, round-learned) triples, plus traffic stats.
    [?trace] and [?faults] are forwarded to {!run}; under faults the
    views degrade gracefully (lost edges simply stay unknown — the
    round budget is not extended). *)
