(** Periodic asynchronous link-state operation and stabilization.

    Section 2.3 of the paper notes that Algorithm RemSpan "can be run
    as in practical link state routing protocols by regularly
    performing its four operations in an asynchronous fashion every
    period of time T"; after a topology change the spanner stabilizes
    "after a time period of T + 2F, where F is the duration of a
    flooding up to distance r - 1 + beta".

    This module simulates exactly that regime so experiment E15 can
    measure the stabilization time:

    - time advances in rounds; node [u] {e originates} a fresh
      advertisement of its current neighbor list every [period] rounds
      (staggered start at [u mod period]);
    - advertisements flood with TTL [radius], one hop per round, and
      are deduplicated by (origin, sequence number);
    - every node caches the freshest advertisement per origin (its own
      adjacency is always current — hello messages) and recomputes its
      dominating tree from the cached view whenever the cache changes;
    - cached entries expire after [2 * period] rounds without refresh
      (soft state, as in OSPF/OLSR), which clears phantom edges left
      by removals near the collection horizon.

    The observable is the union of the nodes' {e current} trees,
    compared each round against the centralized construction on the
    {e current} graph. *)

open Rs_graph

type event = {
  at : int;  (** round at which the change is applied *)
  add : (int * int) list;
  remove : (int * int) list;
}

type result = {
  converged_at : int option;
      (** first round >= the last event after which the union matches
          the target in every remaining round of the horizon *)
  matched : bool array;  (** per-round match flag, length [horizon] *)
  messages : int;  (** total advertisement transmissions *)
}

val simulate :
  ?trace:Rs_obs.Trace.sink ->
  initial:Graph.t ->
  events:event list ->
  period:int ->
  radius:int ->
  horizon:int ->
  tree_of:(Graph.t -> int -> Tree.t) ->
  unit ->
  result
(** [simulate ~initial ~events ~period ~radius ~horizon ~tree_of ()] runs
    the periodic protocol for [horizon] rounds. [tree_of] computes a
    node's dominating tree from an arbitrary (view) graph — pass e.g.
    [fun g u -> Rs_core.Dom_tree_k.gdy_k g ~k:1 u]... any construction
    whose radius requirement is at most [radius]. The target each
    round is the union of [tree_of] applied to the true current graph.
    Events must be sorted by [at]; edges must reference valid vertices
    (removals of absent edges are ignored).

    [?trace] streams JSONL events to the sink: [round_start],
    [originate {round, node, seq}], [expire {round, node, origin}],
    and [round_end {round, messages, matched}] — enough to replay the
    protocol's convergence behaviour offline (schema in
    docs/OBSERVABILITY.md). *)
