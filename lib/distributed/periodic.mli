(** Periodic asynchronous link-state operation and stabilization.

    Section 2.3 of the paper notes that Algorithm RemSpan "can be run
    as in practical link state routing protocols by regularly
    performing its four operations in an asynchronous fashion every
    period of time T"; after a topology change the spanner stabilizes
    "after a time period of T + 2F, where F is the duration of a
    flooding up to distance r - 1 + beta".

    This module simulates exactly that regime so experiment E15 can
    measure the stabilization time:

    - time advances in rounds; node [u] {e originates} a fresh
      advertisement of its current neighbor list every [period] rounds
      (staggered start at [u mod period]);
    - advertisements flood with TTL [radius], one hop per round, and
      are deduplicated by (origin, sequence number) — duplicated or
      reordered copies injected by a fault plan are absorbed by the
      same rule;
    - every node caches the freshest advertisement per origin (its own
      adjacency is always current — hello messages) and recomputes its
      dominating tree from the cached view whenever the cache changes;
    - cached entries expire after [expiry] rounds without refresh
      (soft state, as in OSPF/OLSR; default [2 * period]), which
      clears phantom edges left by removals near the collection
      horizon {e and} ages out the advertisements of crashed nodes.

    The observable is the union of the {e live} nodes' current trees,
    compared each round against the centralized construction on the
    {e current} graph.

    An optional {!Fault.plan} makes the run adversarial: advertisement
    transmissions can be dropped, duplicated or delayed, links can
    flap and nodes can crash and recover (a crashed node is silent —
    it neither originates, forwards, receives nor contributes its tree
    to the union; on recovery it resumes with its crash-time cache,
    whose stale entries age out by expiry). Faulty runs are
    reproducible bit-for-bit from the plan seed; omitting the plan
    leaves behaviour byte-identical to the fault-free protocol. *)

open Rs_graph

type event = {
  at : int;  (** round at which the change is applied *)
  add : (int * int) list;
  remove : (int * int) list;
}

type result = {
  converged_at : int option;
      (** first round >= {!field-quiet_at} after which the union
          matches the target in every remaining round of the horizon *)
  matched : bool array;  (** per-round match flag, length [horizon] *)
  messages : int;  (** advertisement transmissions delivered *)
  lost : int;  (** transmissions lost to faults (loss, link, crash) *)
  quiet_at : int;
      (** first round from which neither topology events nor faults
          interfere: max of the last event's [at] and
          [Fault.quiet_at] of the plan (0 with no faults; [max_int]
          when faults never cease — then [converged_at] is [None]) *)
  incremental_mismatches : int;
      (** rounds where the [?incremental] maintainer's spanner differed
          from the memoized from-scratch target (0 when the hook is
          absent — and expected 0 when present: the constructions are
          deterministic, so a correct repair reproduces the rebuild) *)
}

val simulate :
  ?trace:Rs_obs.Trace.sink ->
  ?faults:Fault.plan ->
  ?expiry:int ->
  ?incremental:(Graph.t -> (int * int) list) ->
  initial:Graph.t ->
  events:event list ->
  period:int ->
  radius:int ->
  horizon:int ->
  tree_of:(Graph.t -> int -> Tree.t) ->
  unit ->
  result
(** [simulate ~initial ~events ~period ~radius ~horizon ~tree_of ()] runs
    the periodic protocol for [horizon] rounds. [tree_of] computes a
    node's dominating tree from an arbitrary (view) graph — pass e.g.
    [fun g u -> Rs_core.Dom_tree_k.gdy_k g ~k:1 u]... any construction
    whose radius requirement is at most [radius]. The target each
    round is the union of [tree_of] applied to the true current graph.
    Events must be sorted by [at] — checked on entry, raising
    [Invalid_argument] naming the offending indices; edges must
    reference valid vertices (removals of absent edges are ignored).
    [expiry] is the soft-state lifetime in rounds (default
    [2 * period]; must be >= 1).

    On convergence the stabilization lag ([converged_at - quiet_at])
    is recorded in the [periodic/convergence_lag] histogram.

    [?incremental] injects a maintained centralized spanner (pass
    [Rs_dynamic.Repair.incremental_target spec] — this module cannot
    depend on [rs_dynamic] itself, [rs_core] sits between them): the
    closure is called once per round with the current graph and must
    return its spanner as canonical pairs. Each epoch it is compared
    against the memoized from-scratch target; divergences are counted
    in [incremental_mismatches] and emitted as
    [incremental_mismatch {round}] trace events. The protocol itself
    is unaffected — this is an equivalence gate riding along the
    simulation.

    [?trace] streams JSONL events to the sink: [round_start],
    [originate {round, node, seq}], [expire {round, node, origin}],
    [round_end {round, messages, matched}], and — under faults —
    [drop {round, from, to, reason}], [dup {round, from, to}],
    [crash {round, node}], [recover {round, node}] — enough to replay
    the protocol's convergence behaviour offline (schema in
    docs/OBSERVABILITY.md). *)

val stabilization_lag : result -> int option
(** Rounds from {!field-quiet_at} to {!field-converged_at}; [None]
    when the run never (re)converged or faults never ceased. *)

val self_stabilizes : result -> bound:int -> bool
(** The executable form of the paper's [T + 2F] claim under adversity:
    did the union of live trees reconverge to the centralized target
    within [bound] rounds of the moment faults and topology changes
    ceased — and stay converged to the horizon? *)
