module Rand = Rs_graph.Rand
module Obs = Rs_obs.Obs

type crash = { node : int; at : int; recover : int option }

type flap = { u : int; v : int; down : int; up : int }

type plan = {
  seed : int;
  drop : float;
  delay : int;
  jitter : int;
  dup : float;
  until : int option;
  crashes : crash list;
  flaps : flap list;
}

let none =
  { seed = 0; drop = 0.0; delay = 0; jitter = 0; dup = 0.0; until = None;
    crashes = []; flaps = [] }

let make ?(drop = 0.0) ?(delay = 0) ?(jitter = 0) ?(dup = 0.0) ?until
    ?(crashes = []) ?(flaps = []) ~seed () =
  let prob name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Fault.make: %s = %g not in [0, 1]" name p)
  in
  prob "drop" drop;
  prob "dup" dup;
  if delay < 0 then invalid_arg "Fault.make: negative delay";
  if jitter < 0 then invalid_arg "Fault.make: negative jitter";
  (match until with
  | Some t when t < 0 -> invalid_arg "Fault.make: negative until"
  | _ -> ());
  List.iter
    (fun c ->
      if c.at < 0 then invalid_arg "Fault.make: crash at a negative round";
      match c.recover with
      | Some r when r <= c.at ->
          invalid_arg
            (Printf.sprintf "Fault.make: crash of node %d recovers at %d <= %d"
               c.node r c.at)
      | _ -> ())
    crashes;
  List.iter
    (fun f ->
      if f.down < 0 then invalid_arg "Fault.make: flap down at a negative round";
      if f.up <= f.down then
        invalid_arg
          (Printf.sprintf "Fault.make: flap of link %d-%d is empty (%d..%d)" f.u
             f.v f.down f.up))
    flaps;
  { seed; drop; delay; jitter; dup; until; crashes; flaps }

let stochastic p = p.drop > 0.0 || p.dup > 0.0 || p.delay > 0 || p.jitter > 0

let is_none p = (not (stochastic p)) && p.crashes = [] && p.flaps = []

let quiet_at p =
  let s =
    if not (stochastic p) then 0
    else match p.until with Some t -> t | None -> max_int
  in
  let c =
    List.fold_left
      (fun acc cr -> match cr.recover with Some r -> max acc r | None -> max_int)
      0 p.crashes
  in
  let f = List.fold_left (fun acc fl -> max acc fl.up) 0 p.flaps in
  max s (max c f)

let last_transition p =
  let c =
    List.fold_left
      (fun acc cr -> max acc (match cr.recover with Some r -> r | None -> cr.at))
      0 p.crashes
  in
  List.fold_left (fun acc fl -> max acc fl.up) c p.flaps

(* ------------------------------------------------------------------ *)

let c_drops = Obs.counter "fault/drops"
let c_dups = Obs.counter "fault/dups"
let c_delays = Obs.counter "fault/delays"

type state = {
  plan : plan;
  rand : Rand.t;
  crash_tbl : (int, (int * int) list) Hashtbl.t; (* node -> [at, recover) *)
  flap_tbl : (int * int, (int * int) list) Hashtbl.t; (* link -> [down, up) *)
}

let start plan =
  let crash_tbl = Hashtbl.create 8 and flap_tbl = Hashtbl.create 8 in
  let push tbl k iv =
    Hashtbl.replace tbl k (iv :: (Option.value ~default:[] (Hashtbl.find_opt tbl k)))
  in
  List.iter
    (fun c ->
      push crash_tbl c.node (c.at, match c.recover with Some r -> r | None -> max_int))
    plan.crashes;
  List.iter
    (fun f ->
      let key = if f.u < f.v then (f.u, f.v) else (f.v, f.u) in
      push flap_tbl key (f.down, f.up))
    plan.flaps;
  { plan; rand = Rand.create plan.seed; crash_tbl; flap_tbl }

let plan_of st = st.plan

let in_no_interval tbl key round =
  match Hashtbl.find_opt tbl key with
  | None -> true
  | Some ivs -> not (List.exists (fun (a, b) -> a <= round && round < b) ivs)

let node_up st ~round u = in_no_interval st.crash_tbl u round

let link_up st ~round u v =
  in_no_interval st.flap_tbl (if u < v then (u, v) else (v, u)) round

type outcome = Dropped | Deliver of int list

let transmit st ~round =
  let p = st.plan in
  let active = match p.until with None -> true | Some t -> round < t in
  if not active then Deliver [ 0 ]
  else if p.drop > 0.0 && Rand.float st.rand 1.0 < p.drop then begin
    Obs.incr c_drops;
    Dropped
  end
  else begin
    let copies =
      if p.dup > 0.0 && Rand.float st.rand 1.0 < p.dup then begin
        Obs.incr c_dups;
        2
      end
      else 1
    in
    let delay_one () =
      let d = p.delay + (if p.jitter > 0 then Rand.int st.rand (p.jitter + 1) else 0) in
      if d > 0 then Obs.incr c_delays;
      d
    in
    (* List.init evaluates in index order in OCaml >= 4.14, but make the
       draw order explicit anyway: first copy first. *)
    let ds = ref [] in
    for _ = 1 to copies do
      ds := delay_one () :: !ds
    done;
    Deliver (List.rev !ds)
  end

(* ------------------------------------------------------------------ *)
(* schedule files *)

let parse_schedule text =
  let crashes = ref [] and flaps = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let toks =
        String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
        |> List.filter (( <> ) "")
      in
      let bad why =
        failwith (Printf.sprintf "Fault.parse_schedule: line %d: %s" (i + 1) why)
      in
      let int s = match int_of_string_opt s with Some v -> v | None -> bad ("not an integer: " ^ s) in
      match toks with
      | [] -> ()
      | "crash" :: rest -> (
          match rest with
          | [ node; at ] -> crashes := { node = int node; at = int at; recover = None } :: !crashes
          | [ node; at; recover ] ->
              crashes :=
                { node = int node; at = int at; recover = Some (int recover) } :: !crashes
          | _ -> bad "expected: crash NODE AT [RECOVER]")
      | [ "flap"; u; v; down; up ] ->
          flaps := { u = int u; v = int v; down = int down; up = int up } :: !flaps
      | kw :: _ -> bad ("unknown directive: " ^ kw))
    lines;
  (List.rev !crashes, List.rev !flaps)

let load_schedule path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      parse_schedule (really_input_string ic len))
