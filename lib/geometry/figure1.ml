type t = {
  graph : Rs_graph.Graph.t;
  points : Point.t array;
  u : int;
  v : int;
  x : int;
  x' : int;
  y : int;
  y' : int;
  z : int;
}

(* ids: u=0 y=1 y'=2 x=3 x'=4 v=5 z=6 a=7 b=8 (a, b are the clique
   companions of u and v). Radius 1. *)
let coords =
  [|
    [| 0.0; 0.0 |] (* u *);
    [| 0.8; 0.4 |] (* y *);
    [| 0.8; -0.4 |] (* y' *);
    [| 1.25; 0.55 |] (* x *);
    [| 1.25; -0.55 |] (* x' *);
    [| 1.7; 0.0 |] (* v *);
    [| 1.0; 1.2 |] (* z *);
    [| 0.15; 0.25 |] (* a *);
    [| 1.55; -0.3 |] (* b *);
  |]

let instance () =
  let graph = Unit_ball.udg coords in
  { graph; points = coords; u = 0; v = 5; x = 3; x' = 4; y = 1; y' = 2; z = 6 }

let label _ = function
  | 0 -> "u"
  | 1 -> "y"
  | 2 -> "y'"
  | 3 -> "x"
  | 4 -> "x'"
  | 5 -> "v"
  | 6 -> "z"
  | 7 -> "a"
  | 8 -> "b"
  | i -> string_of_int i
