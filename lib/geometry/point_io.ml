let to_string pts =
  let dim = if Array.length pts = 0 then 0 else Array.length pts.(0) in
  let buf = Buffer.create (32 * Array.length pts) in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Array.length pts) dim);
  Array.iter
    (fun p ->
      if Array.length p <> dim then invalid_arg "Point_io.to_string: ragged dimensions";
      Buffer.add_string buf
        (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.17g") p)));
      Buffer.add_char buf '\n')
    pts;
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> failwith "Point_io.of_string: empty input"
  | header :: rest -> (
      let fields l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
      match fields header with
      | [ a; b ] -> (
          let n, dim =
            try (int_of_string a, int_of_string b)
            with _ -> failwith "Point_io.of_string: bad header"
          in
          let parse l =
            let cs = fields l in
            if List.length cs <> dim then failwith "Point_io.of_string: bad row width";
            Array.of_list
              (List.map
                 (fun c ->
                   try float_of_string c
                   with _ -> failwith "Point_io.of_string: bad coordinate")
                 cs)
          in
          let pts = List.map parse rest in
          if List.length pts <> n then failwith "Point_io.of_string: row count mismatch";
          Array.of_list pts)
      | _ -> failwith "Point_io.of_string: bad header")

let save path pts =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string pts))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
