module Graph = Rs_graph.Graph

let of_metric ?(radius = 1.0) (m : Metric.t) =
  let es = ref [] in
  for u = 0 to m.size - 1 do
    for v = u + 1 to m.size - 1 do
      if m.dist u v <= radius then es := (u, v) :: !es
    done
  done;
  Graph.make ~n:m.size !es

(* Cell grid of side [radius]: neighbors of a point lie in the 3^d
   surrounding cells. Cells are hashed by their integer coordinates. *)
let of_points ?(radius = 1.0) pts =
  let n = Array.length pts in
  if n = 0 then Graph.make ~n:0 []
  else begin
    let d = Array.length pts.(0) in
    let cell_of p = Array.map (fun x -> int_of_float (Float.floor (x /. radius))) p in
    let key c = Array.fold_left (fun acc x -> (acc * 1_000_003) + x + 500_000) 17 c in
    let cells : (int, int list) Hashtbl.t = Hashtbl.create (2 * n) in
    let cell_coord = Array.map cell_of pts in
    Array.iteri
      (fun i c ->
        let k = key c in
        Hashtbl.replace cells k (i :: Option.value ~default:[] (Hashtbl.find_opt cells k)))
      cell_coord;
    let es = ref [] in
    (* enumerate offsets in {-1,0,1}^d *)
    let offsets =
      let rec build i acc = if i = d then [ List.rev acc ] else
          List.concat_map (fun o -> build (i + 1) (o :: acc)) [ -1; 0; 1 ]
      in
      build 0 [] |> List.map Array.of_list
    in
    for u = 0 to n - 1 do
      let cu = cell_coord.(u) in
      List.iter
        (fun off ->
          let c = Array.mapi (fun i x -> x + off.(i)) cu in
          match Hashtbl.find_opt cells (key c) with
          | None -> ()
          | Some vs ->
              List.iter
                (fun v ->
                  if v > u && Point.l2 pts.(u) pts.(v) <= radius then es := (u, v) :: !es)
                vs)
        offsets
    done;
    Graph.make ~n !es
  end

let udg ?radius pts =
  Array.iter
    (fun p -> if Array.length p <> 2 then invalid_arg "Unit_ball.udg: points must be 2-D")
    pts;
  of_points ?radius pts
