module Graph = Rs_graph.Graph
module Edge_set = Rs_graph.Edge_set

let render ?(width = 72) ?(height = 28) ?spanner ?labels pts g =
  if Array.length pts <> Graph.n g then invalid_arg "Render.render: size mismatch";
  Array.iter
    (fun p -> if Array.length p <> 2 then invalid_arg "Render.render: need 2-D points")
    pts;
  if width < 2 || height < 2 then invalid_arg "Render.render: canvas too small";
  let grid = Array.make_matrix height width ' ' in
  if Array.length pts = 0 then String.concat "\n" (List.init height (fun _ -> ""))
  else begin
    let min_of f = Array.fold_left (fun acc p -> Float.min acc (f p)) infinity pts in
    let max_of f = Array.fold_left (fun acc p -> Float.max acc (f p)) neg_infinity pts in
    let x0 = min_of (fun p -> p.(0)) and x1 = max_of (fun p -> p.(0)) in
    let y0 = min_of (fun p -> p.(1)) and y1 = max_of (fun p -> p.(1)) in
    let sx = if x1 > x0 then float_of_int (width - 1) /. (x1 -. x0) else 0.0 in
    let sy = if y1 > y0 then float_of_int (height - 1) /. (y1 -. y0) else 0.0 in
    let cell p =
      let cx = int_of_float (Float.round ((p.(0) -. x0) *. sx)) in
      (* screen y grows downward *)
      let cy = height - 1 - int_of_float (Float.round ((p.(1) -. y0) *. sy)) in
      (max 0 (min (width - 1) cx), max 0 (min (height - 1) cy))
    in
    let plot (x, y) ch =
      (* vertices override edges; '#' overrides '.' *)
      match (grid.(y).(x), ch) with
      | ' ', _ -> grid.(y).(x) <- ch
      | '.', '#' -> grid.(y).(x) <- ch
      | ('.' | '#'), c when c <> '.' && c <> '#' -> grid.(y).(x) <- c
      | _ -> ()
    in
    let line (x0, y0) (x1, y1) ch =
      (* Bresenham *)
      let dx = abs (x1 - x0) and dy = -abs (y1 - y0) in
      let sx = if x0 < x1 then 1 else -1 and sy = if y0 < y1 then 1 else -1 in
      let err = ref (dx + dy) in
      let x = ref x0 and y = ref y0 in
      let continue = ref true in
      while !continue do
        plot (!x, !y) ch;
        if !x = x1 && !y = y1 then continue := false
        else begin
          let e2 = 2 * !err in
          if e2 >= dy then begin
            err := !err + dy;
            x := !x + sx
          end;
          if e2 <= dx then begin
            err := !err + dx;
            y := !y + sy
          end
        end
      done
    in
    (* plain edges first, then spanner edges, then vertices on top *)
    Graph.iter_edges
      (fun u v ->
        let hot = match spanner with Some h -> Edge_set.mem h u v | None -> false in
        if not hot then line (cell pts.(u)) (cell pts.(v)) '.')
      g;
    (match spanner with
    | Some h -> Edge_set.iter (fun u v -> line (cell pts.(u)) (cell pts.(v)) '#') h
    | None -> ());
    Array.iteri
      (fun i p ->
        let ch =
          match labels with
          | Some f -> f i
          | None -> Char.chr (Char.code '0' + (i mod 10))
        in
        let x, y = cell p in
        grid.(y).(x) <- ch)
      pts;
    String.concat "\n"
      (Array.to_list (Array.map (fun row -> String.init width (Array.get row)) grid))
  end
