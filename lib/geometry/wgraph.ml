module Graph = Rs_graph.Graph
module Edge_set = Rs_graph.Edge_set

type t = { g : Graph.t; w : float array (* by canonical edge id *) }

let of_metric_graph (m : Metric.t) g =
  if m.size <> Graph.n g then invalid_arg "Wgraph.of_metric_graph: size mismatch";
  let w = Array.make (Graph.m g) 0.0 in
  Graph.iter_edges (fun u v -> w.(Graph.edge_id g u v) <- m.dist u v) g;
  { g; w }

let n t = Graph.n t.g
let m t = Graph.m t.g

let weight t u v = t.w.(Graph.edge_id t.g u v)

module Heap = Rs_graph.Heap.Make (Float)

let dijkstra_adj g w adj_filter src =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let heap = Heap.create () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if d <= dist.(u) then
          Array.iter
            (fun v ->
              if adj_filter u v then begin
                let nd = d +. w.(Graph.edge_id g u v) in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  Heap.push heap nd v
                end
              end)
            (Graph.neighbors g u);
        drain ()
  in
  drain ();
  dist

let dijkstra t src = dijkstra_adj t.g t.w (fun _ _ -> true) src

(* Bounded Dijkstra used inside the greedy spanner: stop once the
   target is settled or distances exceed the bound. *)
let spanner_dist g w keep src dst bound =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let heap = Heap.create () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let result = ref infinity in
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if u = dst then result := d
        else if d <= dist.(u) && d <= bound then begin
          Array.iter
            (fun v ->
              if Edge_set.mem keep u v then begin
                let nd = d +. w.(Graph.edge_id g u v) in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  Heap.push heap nd v
                end
              end)
            (Graph.neighbors g u);
          drain ()
        end
        else if d <= bound then drain ()
  in
  drain ();
  !result

let greedy_tspanner t ~t_ =
  if t_ < 1.0 then invalid_arg "Wgraph.greedy_tspanner: t < 1";
  let order = Array.init (Graph.m t.g) Fun.id in
  Array.sort (fun a b -> compare t.w.(a) t.w.(b)) order;
  let keep = Edge_set.create t.g in
  Array.iter
    (fun id ->
      let u, v = Graph.edge t.g id in
      let bound = t_ *. t.w.(id) in
      let d = spanner_dist t.g t.w keep u v bound in
      if d > bound then Edge_set.add_id keep id)
    order;
  keep

let stretch_ok t keep ~t_ =
  let ok = ref true in
  Graph.iter_edges
    (fun u v ->
      if !ok && not (Edge_set.mem keep u v) then begin
        let bound = t_ *. weight t u v in
        (* tolerate floating rounding *)
        if spanner_dist t.g t.w keep u v (bound +. 1e-9) > bound +. 1e-9 then ok := false
      end)
    t.g;
  !ok
