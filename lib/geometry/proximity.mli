(** Classic proximity sub-graphs used for ad hoc topology control.

    These are the structures practitioners advertised before (and
    alongside) multipoint relays: geometric filters that keep a sparse,
    local sub-graph of the unit disk graph. They make instructive
    baselines for the routing experiment — sparse, yes, but with {e no
    remote-spanner guarantee}: their hop stretch over H_u is unbounded
    in general, which is exactly the gap remote-spanners close.

    All constructions filter the edges of a given geometric graph (the
    UDG), so the results are sub-graphs returned as edge sets. *)

open Rs_graph

val grid_order : ?cell:float -> Point.t array -> int array
(** [grid_order pts] is a permutation of [0, n) that visits the points
    cell by cell over a grid of side [cell] (default 1.0, the UDG
    radius), rows in a serpentine sweep and ascending id within a
    cell. Consecutive indices are geometrically close, so feeding this
    as the [?order] of [Rs_core.Sharded.build] makes each batch of
    roots share most of its balls — the geometric counterpart of
    [Sharded.locality_order], computable without touching the graph.
    Requires 2-D points; affects performance only, never results. *)

val gabriel : Point.t array -> Graph.t -> Edge_set.t
(** Gabriel graph restricted to [g]'s edges: keep edge (u, v) iff no
    third point lies strictly inside the disk with diameter [uv]. *)

val relative_neighborhood : Point.t array -> Graph.t -> Edge_set.t
(** Relative neighborhood graph: keep (u, v) iff no third point [w]
    has [max(d(u,w), d(v,w)) < d(u,v)] (the "lune" is empty). A
    sub-graph of the Gabriel graph. *)

val yao : ?cones:int -> Point.t array -> Graph.t -> Edge_set.t
(** Yao graph (2-D): for each node, partition the plane into [cones]
    equal sectors (default 6) and keep the shortest incident edge per
    non-empty sector (in both directions, so the result is the
    symmetric closure). Connected whenever [g] is, for cones >= 6. *)
