(** The paper's Figure 1 instance, reconstructed as a concrete unit
    disk graph.

    The published figure is drawn, not specified; we place nine points
    so that the resulting UDG has the properties the caption asserts:
    [d_G(u,x) = 2], [d_G(u,v) = 2] (via the common neighbors y, y'),
    two internally disjoint u-v path pairs u-y-x-v / u-y'-x'-v, a node
    z adjacent to x and y only, and two local cliques (around u and
    around v) standing in for the dashed ovals. *)

type t = {
  graph : Rs_graph.Graph.t;
  points : Point.t array;
  u : int;
  v : int;
  x : int;
  x' : int;
  y : int;
  y' : int;
  z : int;
}

val instance : unit -> t

val label : t -> int -> string
(** Pretty vertex names ("u", "y'", ...) for DOT/console output. *)
