(** Edge-weighted graphs and the classic greedy t-spanner.

    Only the "known distances" baseline of Table 1 (row "UBG known
    dist.", after [9]) needs weights: there the unit ball graph is
    weighted by metric edge lengths and a [(1+eps, 0)]-spanner is built
    with the greedy algorithm, which attains O(n) edges on doubling
    metrics. Everything else in the library is unweighted. *)

type t

val of_metric_graph : Metric.t -> Rs_graph.Graph.t -> t
(** Weight every edge of the (unit ball) graph by its metric length. *)

val n : t -> int
val m : t -> int
val weight : t -> int -> int -> float
(** Raises [Not_found] for non-edges. *)

val dijkstra : t -> int -> float array
(** Shortest weighted distances from a source; [infinity] when
    unreachable. *)

val greedy_tspanner : t -> t_:float -> Rs_graph.Edge_set.t
(** Althöfer et al. greedy spanner: scan edges by increasing weight,
    keep edge (u,v) iff the current spanner distance exceeds
    [t_ * w(u,v)]. The result is a [t_]-spanner of the weighted graph;
    on the unit ball graph of a doubling metric it has O(n) edges for
    any fixed [t_ > 1]. *)

val stretch_ok : t -> Rs_graph.Edge_set.t -> t_:float -> bool
(** Verify the weighted t-spanner property edge-by-edge (sufficient:
    per-edge stretch bounds path stretch). *)
