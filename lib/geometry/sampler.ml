module Rand = Rs_graph.Rand

let uniform rand ~n ~dim ~side =
  Array.init n (fun _ -> Array.init dim (fun _ -> Rand.float rand side))

let poisson_square rand ~intensity ~side =
  let n = Rand.poisson rand (intensity *. side *. side) in
  uniform rand ~n ~dim:2 ~side

let grid_jitter rand ~per_side ~spacing ~jitter =
  Array.init (per_side * per_side) (fun i ->
      let r = i / per_side and c = i mod per_side in
      [|
        (float_of_int c *. spacing) +. Rand.float rand (2.0 *. jitter) -. jitter;
        (float_of_int r *. spacing) +. Rand.float rand (2.0 *. jitter) -. jitter;
      |])
