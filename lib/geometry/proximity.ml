module Graph = Rs_graph.Graph
module Edge_set = Rs_graph.Edge_set

let check_pts pts g =
  if Array.length pts <> Graph.n g then invalid_arg "Proximity: size mismatch";
  Array.iter
    (fun p -> if Array.length p <> 2 then invalid_arg "Proximity: need 2-D points")
    pts

let grid_order ?(cell = 1.0) pts =
  if cell <= 0.0 then invalid_arg "Proximity.grid_order: cell > 0";
  Array.iter
    (fun p -> if Array.length p <> 2 then invalid_arg "Proximity.grid_order: need 2-D points")
    pts;
  let n = Array.length pts in
  if n = 0 then [||]
  else begin
    let minx = ref pts.(0).(0) and miny = ref pts.(0).(1) in
    Array.iter
      (fun p ->
        if p.(0) < !minx then minx := p.(0);
        if p.(1) < !miny then miny := p.(1))
      pts;
    (* Serpentine sweep over the cell grid: rows bottom-up, columns
       alternating direction, so consecutive cells share a border and a
       run of consecutive roots stays inside a small disk. *)
    let key = Array.init n (fun i -> i) in
    let cells i =
      let p = pts.(i) in
      let row = int_of_float ((p.(1) -. !miny) /. cell) in
      let col = int_of_float ((p.(0) -. !minx) /. cell) in
      let col = if row land 1 = 0 then col else -col in
      (row, col)
    in
    Array.sort
      (fun a b ->
        let ka = cells a and kb = cells b in
        if ka <> kb then compare ka kb else compare a b)
      key;
    key
  end

let gabriel pts g =
  check_pts pts g;
  let keep = Edge_set.create g in
  Graph.iter_edges
    (fun u v ->
      let cx = (pts.(u).(0) +. pts.(v).(0)) /. 2.0
      and cy = (pts.(u).(1) +. pts.(v).(1)) /. 2.0 in
      let r2 =
        let dx = pts.(u).(0) -. cx and dy = pts.(u).(1) -. cy in
        (dx *. dx) +. (dy *. dy)
      in
      let blocked = ref false in
      Array.iteri
        (fun w p ->
          if w <> u && w <> v then begin
            let dx = p.(0) -. cx and dy = p.(1) -. cy in
            if (dx *. dx) +. (dy *. dy) < r2 -. 1e-12 then blocked := true
          end)
        pts;
      if not !blocked then Edge_set.add keep u v)
    g;
  keep

let relative_neighborhood pts g =
  check_pts pts g;
  let keep = Edge_set.create g in
  Graph.iter_edges
    (fun u v ->
      let duv = Point.l2 pts.(u) pts.(v) in
      let blocked = ref false in
      Array.iteri
        (fun w p ->
          if w <> u && w <> v then
            if Float.max (Point.l2 pts.(u) p) (Point.l2 pts.(v) p) < duv -. 1e-12 then
              blocked := true)
        pts;
      if not !blocked then Edge_set.add keep u v)
    g;
  keep

let yao ?(cones = 6) pts g =
  check_pts pts g;
  if cones < 1 then invalid_arg "Proximity.yao: cones >= 1";
  let keep = Edge_set.create g in
  let sector u v =
    let dx = pts.(v).(0) -. pts.(u).(0) and dy = pts.(v).(1) -. pts.(u).(1) in
    let a = Float.atan2 dy dx in
    let a = if a < 0.0 then a +. (2.0 *. Float.pi) else a in
    min (cones - 1) (int_of_float (a /. (2.0 *. Float.pi /. float_of_int cones)))
  in
  Graph.iter_vertices
    (fun u ->
      let best = Array.make cones (-1) in
      Array.iter
        (fun v ->
          let s = sector u v in
          if best.(s) < 0 || Point.l2 pts.(u) pts.(v) < Point.l2 pts.(u) pts.(best.(s)) then
            best.(s) <- v)
        (Graph.neighbors g u);
      Array.iter (fun v -> if v >= 0 then Edge_set.add keep u v) best)
    g;
  keep
