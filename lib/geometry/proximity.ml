module Graph = Rs_graph.Graph
module Edge_set = Rs_graph.Edge_set

let check_pts pts g =
  if Array.length pts <> Graph.n g then invalid_arg "Proximity: size mismatch";
  Array.iter
    (fun p -> if Array.length p <> 2 then invalid_arg "Proximity: need 2-D points")
    pts

let gabriel pts g =
  check_pts pts g;
  let keep = Edge_set.create g in
  Graph.iter_edges
    (fun u v ->
      let cx = (pts.(u).(0) +. pts.(v).(0)) /. 2.0
      and cy = (pts.(u).(1) +. pts.(v).(1)) /. 2.0 in
      let r2 =
        let dx = pts.(u).(0) -. cx and dy = pts.(u).(1) -. cy in
        (dx *. dx) +. (dy *. dy)
      in
      let blocked = ref false in
      Array.iteri
        (fun w p ->
          if w <> u && w <> v then begin
            let dx = p.(0) -. cx and dy = p.(1) -. cy in
            if (dx *. dx) +. (dy *. dy) < r2 -. 1e-12 then blocked := true
          end)
        pts;
      if not !blocked then Edge_set.add keep u v)
    g;
  keep

let relative_neighborhood pts g =
  check_pts pts g;
  let keep = Edge_set.create g in
  Graph.iter_edges
    (fun u v ->
      let duv = Point.l2 pts.(u) pts.(v) in
      let blocked = ref false in
      Array.iteri
        (fun w p ->
          if w <> u && w <> v then
            if Float.max (Point.l2 pts.(u) p) (Point.l2 pts.(v) p) < duv -. 1e-12 then
              blocked := true)
        pts;
      if not !blocked then Edge_set.add keep u v)
    g;
  keep

let yao ?(cones = 6) pts g =
  check_pts pts g;
  if cones < 1 then invalid_arg "Proximity.yao: cones >= 1";
  let keep = Edge_set.create g in
  let sector u v =
    let dx = pts.(v).(0) -. pts.(u).(0) and dy = pts.(v).(1) -. pts.(u).(1) in
    let a = Float.atan2 dy dx in
    let a = if a < 0.0 then a +. (2.0 *. Float.pi) else a in
    min (cones - 1) (int_of_float (a /. (2.0 *. Float.pi /. float_of_int cones)))
  in
  Graph.iter_vertices
    (fun u ->
      let best = Array.make cones (-1) in
      Array.iter
        (fun v ->
          let s = sector u v in
          if best.(s) < 0 || Point.l2 pts.(u) pts.(v) < Point.l2 pts.(u) pts.(best.(s)) then
            best.(s) <- v)
        (Graph.neighbors g u);
      Array.iter (fun v -> if v >= 0 then Edge_set.add keep u v) best)
    g;
  keep
