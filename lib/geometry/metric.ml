type t = { size : int; dist : int -> int -> float }

let euclidean pts = { size = Array.length pts; dist = (fun i j -> Point.l2 pts.(i) pts.(j)) }

let linf pts = { size = Array.length pts; dist = (fun i j -> Point.linf pts.(i) pts.(j)) }

let torus ~side pts =
  { size = Array.length pts; dist = (fun i j -> Point.torus_l2 ~side pts.(i) pts.(j)) }

let of_fun ~size dist = { size; dist }

let doubling_estimate m ~sample rand =
  if m.size = 0 then 0.0
  else begin
    let worst = ref 0.0 in
    for _ = 1 to sample do
      let c = Rs_graph.Rand.int rand m.size in
      (* radius: distance to a random other point *)
      let o = Rs_graph.Rand.int rand m.size in
      let radius = m.dist c o in
      if radius > 0.0 then begin
        let ball = ref [] in
        for v = 0 to m.size - 1 do
          if m.dist c v <= radius then ball := v :: !ball
        done;
        (* greedy cover of the ball by balls of radius/2 *)
        let remaining = ref !ball in
        let covers = ref 0 in
        while !remaining <> [] do
          match !remaining with
          | [] -> ()
          | center :: _ ->
              incr covers;
              remaining := List.filter (fun v -> m.dist center v > radius /. 2.0) !remaining
        done;
        if !covers > 0 then worst := Float.max !worst (Float.log (float_of_int !covers) /. Float.log 2.0)
      end
    done;
    !worst
  end
