(** ASCII rendering of planar geometric graphs.

    Draws 2-D point sets and their graphs on a character grid —
    vertices as ids (mod 10 or '*'), edges as Bresenham line segments
    — with spanner edges drawn in a distinct glyph. Meant for terminal
    demos and quick eyeballing of unit disk inputs; not a plotting
    library. *)

val render :
  ?width:int ->
  ?height:int ->
  ?spanner:Rs_graph.Edge_set.t ->
  ?labels:(int -> char) ->
  Point.t array ->
  Rs_graph.Graph.t ->
  string
(** [render pts g] draws [g] using the 2-D coordinates [pts] scaled
    into [width] x [height] characters (default 72 x 28). Edges in
    [spanner] are drawn with '#', other edges with '.'; vertices with
    [labels] (default: last digit of the id). Raises
    [Invalid_argument] on non-2-D points or size mismatch. *)
