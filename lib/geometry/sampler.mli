(** Random point processes for the paper's input models. *)

val uniform : Rs_graph.Rand.t -> n:int -> dim:int -> side:float -> Point.t array
(** [n] i.i.d. uniform points in the cube [\[0, side\]^dim]. *)

val poisson_square : Rs_graph.Rand.t -> intensity:float -> side:float -> Point.t array
(** Uniform Poisson process of the given intensity on
    [\[0, side\]^2] — the paper's random unit disk model (§3.2): the
    number of points is Poisson(intensity * side^2), positions are
    uniform. *)

val grid_jitter : Rs_graph.Rand.t -> per_side:int -> spacing:float -> jitter:float -> Point.t array
(** [per_side^2] points on a 2-D grid with the given spacing, each
    perturbed uniformly in [\[-jitter, jitter\]^2]. A doubling metric
    with a predictable structure: handy for deterministic-ish UBG
    tests. *)
