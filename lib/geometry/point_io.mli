(** Plain-text serialization of point sets.

    Format: first line "n dim", then one whitespace-separated
    coordinate row per point. '#' lines are comments. Companion to
    {!Rs_graph.Graph_io} so the CLI can persist geometric inputs. *)

val to_string : Point.t array -> string
val of_string : string -> Point.t array
(** Raises [Failure] on malformed input. *)

val save : string -> Point.t array -> unit
val load : string -> Point.t array
