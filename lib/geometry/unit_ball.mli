(** Unit ball graph construction.

    [G] has an edge [uv] iff [dist(u, v) <= radius]. The Euclidean 2-D
    case (unit {e disk} graph) is accelerated with a cell grid; the
    generic metric case is O(n^2). *)

val of_metric : ?radius:float -> Metric.t -> Rs_graph.Graph.t
(** Generic O(n^2) builder; [radius] defaults to 1. *)

val of_points : ?radius:float -> Point.t array -> Rs_graph.Graph.t
(** Euclidean unit ball graph in any dimension, cell-grid accelerated
    (expected near-linear time for bounded densities). *)

val udg : ?radius:float -> Point.t array -> Rs_graph.Graph.t
(** Alias of {!of_points} restricted to 2-D inputs (the paper's unit
    disk graph); raises [Invalid_argument] on other dimensions. *)
