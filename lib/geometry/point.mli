(** Points in R^d as float arrays. *)

type t = float array

val dim : t -> int

val l2 : t -> t -> float
(** Euclidean distance. Dimensions must agree. *)

val linf : t -> t -> float
(** Chebyshev distance. *)

val l1 : t -> t -> float

val torus_l2 : side:float -> t -> t -> float
(** Euclidean distance on the d-torus of the given side (coordinates
    taken modulo [side], shortest wrap per axis). *)

val pp : Format.formatter -> t -> unit
