type t = float array

let dim = Array.length

let check a b =
  if Array.length a <> Array.length b then invalid_arg "Point: dimension mismatch"

let l2 a b =
  check a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let linf a b =
  check a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := Float.max !acc (Float.abs (a.(i) -. b.(i)))
  done;
  !acc

let l1 a b =
  check a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. Float.abs (a.(i) -. b.(i))
  done;
  !acc

let torus_l2 ~side a b =
  check a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = Float.abs (a.(i) -. b.(i)) in
    let d = Float.rem d side in
    let d = Float.min d (side -. d) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let pp fmt p =
  Format.fprintf fmt "(@[<h>%a@])"
    (Format.pp_print_array
       ~pp_sep:(fun f () -> Format.fprintf f ",@ ")
       (fun f x -> Format.fprintf f "%.3f" x))
    p
