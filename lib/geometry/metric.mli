(** Finite metric spaces over indexed point sets.

    The paper's unit ball graph (UBG) model assumes an underlying
    metric of constant doubling dimension; the remote-spanner
    algorithms never read it (distances are "unknown"), but the
    experiments need it to build inputs and the known-distance baseline
    spanner reads it explicitly. *)

type t = { size : int; dist : int -> int -> float }

val euclidean : Point.t array -> t
val linf : Point.t array -> t
val torus : side:float -> Point.t array -> t

val of_fun : size:int -> (int -> int -> float) -> t

val doubling_estimate : t -> sample:int -> Rs_graph.Rand.t -> float
(** Crude empirical doubling-dimension estimate: for sampled centers
    and radii, log2 of the number of balls of radius R/2 greedily
    needed to cover a ball of radius R; returns the max over samples.
    Only used to sanity-check generated inputs. *)
