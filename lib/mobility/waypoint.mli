(** Random waypoint mobility (the standard MANET churn model).

    Each node picks a uniform destination in the square, moves toward
    it at a uniform-random speed, pauses on arrival, then repeats.
    Time advances in unit steps; all randomness flows through the
    seeded generator, so runs are reproducible. *)

type t

val create :
  Rs_graph.Rand.t ->
  n:int ->
  side:float ->
  speed_min:float ->
  speed_max:float ->
  pause:int ->
  t
(** [create rand ~n ~side ~speed_min ~speed_max ~pause]: [n] nodes
    uniform in [\[0, side\]^2]; speeds per leg uniform in
    [\[speed_min, speed_max\]] (distance units per step); [pause]
    steps of rest at each waypoint. Requires
    [0 <= speed_min <= speed_max] and [pause >= 0]. *)

val n : t -> int

val positions : t -> Rs_geometry.Point.t array
(** Current positions (fresh copy; safe to retain). *)

val step : t -> unit
(** Advance one time unit: move every node toward its waypoint
    (arriving exactly on it rather than overshooting), tick pause
    counters, draw new waypoints as needed. *)

val graph : ?radius:float -> t -> Rs_graph.Graph.t
(** Unit disk graph of the current positions (radius defaults to 1). *)
