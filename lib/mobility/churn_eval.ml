module Graph = Rs_graph.Graph
module Edge_set = Rs_graph.Edge_set
module Bfs = Rs_graph.Bfs
module Rand = Rs_graph.Rand
module Fault = Rs_distributed.Fault
module Delta = Rs_dynamic.Delta
module Repair = Rs_dynamic.Repair

type strategy = {
  name : string;
  build : Graph.t -> Edge_set.t;
  spec : Repair.spec option;
}

let strategy ?spec name build = { name; build; spec }

type report = {
  name : string;
  steps : int;
  pairs_attempted : int;
  delivered : int;
  mean_stretch : float;
  mean_advertised : float;
  link_changes : int;
  repair_mismatches : int;
}

(* mutable per-strategy accumulator *)
type state = {
  strategy : strategy;
  mutable stale_adj : int array array;  (** adjacency of the stale H *)
  mutable advertised_sum : int;
  mutable refreshes : int;
  mutable attempted : int;
  mutable delivered : int;
  mutable stretch_sum : float;
  mutable repair : Repair.t option;  (** incremental mode only *)
  mutable repair_mismatches : int;
}

(* belief distances from [dst] in (stale H + c's current links);
   mirrors Link_state.dist_from_in_view but with a decoupled stale
   adjacency *)
let belief_dist ~n ~stale_adj ~current c dst =
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  dist.(dst) <- 0;
  queue.(0) <- dst;
  let head = ref 0 and tail = ref 1 in
  let push v d =
    if dist.(v) < 0 then begin
      dist.(v) <- d;
      queue.(!tail) <- v;
      incr tail
    end
  in
  while !head < !tail do
    let x = queue.(!head) in
    incr head;
    let dx = dist.(x) in
    Array.iter (fun y -> push y (dx + 1)) stale_adj.(x);
    if x = c then Array.iter (fun y -> push y (dx + 1)) (Graph.neighbors current c)
    else if Graph.mem_edge current c x then push c (dx + 1)
  done;
  dist

(* [fault]/[t]: per-hop fault injection — a crashed node cannot relay
   (its neighbors route around it, hello-level detection), a flapped
   link carries nothing, and each hop transmission can be lost with the
   plan's drop probability. [None] touches no random stream at all, so
   fault-free runs are byte-identical to the pre-fault evaluator. *)
let route ?fault ~t ~n ~stale_adj ~current src dst =
  let usable c w =
    match fault with
    | None -> true
    | Some fs -> Fault.node_up fs ~round:t w && Fault.link_up fs ~round:t c w
  in
  let hop_survives () =
    match fault with
    | None -> true
    | Some fs -> ( match Fault.transmit fs ~round:t with
                 | Fault.Dropped -> false
                 | Fault.Deliver _ -> true)
  in
  let endpoints_up =
    match fault with
    | None -> true
    | Some fs -> Fault.node_up fs ~round:t src && Fault.node_up fs ~round:t dst
  in
  let rec forward c hops =
    if c = dst then Some hops
    else if hops > n then None (* stale loop *)
    else begin
      let dist = belief_dist ~n ~stale_adj ~current c dst in
      let best = ref (-1) and best_d = ref max_int in
      Array.iter
        (fun w ->
          if usable c w && dist.(w) >= 0 && dist.(w) < !best_d then begin
            best := w;
            best_d := dist.(w)
          end)
        (Graph.neighbors current c);
      match !best with
      | -1 -> None
      | w -> if hop_survives () then forward w (hops + 1) else None
    end
  in
  if endpoints_up then forward src 0 else None

let edge_pair_set g =
  let tbl = Hashtbl.create (2 * Graph.m g) in
  Graph.iter_edges (fun u v -> Hashtbl.replace tbl (u, v) ()) g;
  tbl

let count_flips prev cur =
  let a = edge_pair_set prev and b = edge_pair_set cur in
  let flips = ref 0 in
  Hashtbl.iter (fun e () -> if not (Hashtbl.mem b e) then incr flips) a;
  Hashtbl.iter (fun e () -> if not (Hashtbl.mem a e) then incr flips) b;
  !flips

let adjacency_of_pairs ~n pairs =
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    pairs;
  let adj = Array.init n (fun u -> Array.make deg.(u) 0) in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    pairs;
  adj

(* Refresh one strategy's advertisement from the current topology.
   Full mode rebuilds H from scratch. Incremental mode (strategy has a
   repair spec) diffs the topology against the maintained repair state,
   heals it, and gates the result against the from-scratch build: any
   divergence is counted in [repair_mismatches] and the from-scratch H
   wins, so routing results can degrade only in the report, never
   silently. *)
let refresh_state ~n ~incremental g st =
  let full () = Edge_set.to_list (st.strategy.build g) in
  let pairs =
    match (incremental, st.strategy.spec) with
    | false, _ | true, None -> full ()
    | true, Some spec ->
        let r =
          match st.repair with
          | Some r ->
              if Repair.graph r != g then
                ignore (Repair.apply r (Delta.diff (Repair.graph r) g));
              r
          | None ->
              let r = Repair.init spec g in
              st.repair <- Some r;
              r
        in
        let healed = Repair.pairs r in
        let reference = full () in
        if healed = reference then healed
        else begin
          st.repair_mismatches <- st.repair_mismatches + 1;
          reference
        end
  in
  st.stale_adj <- adjacency_of_pairs ~n pairs;
  st.advertised_sum <- st.advertised_sum + List.length pairs;
  st.refreshes <- st.refreshes + 1

let run ?faults ?(incremental = false) ?wal rand ~model ~strategies ~steps ~refresh
    ~pairs_per_step =
  if refresh < 1 || steps < 1 then invalid_arg "Churn_eval.run: steps, refresh >= 1";
  let fault = Option.map Fault.start faults in
  let n = Waypoint.n model in
  let states =
    List.map
      (fun strategy ->
        {
          strategy;
          stale_adj = Array.make n [||];
          advertised_sum = 0;
          refreshes = 0;
          attempted = 0;
          delivered = 0;
          stretch_sum = 0.0;
          repair = None;
          repair_mismatches = 0;
        })
      strategies
  in
  let prev_graph = ref None in
  let link_changes = ref 0 in
  for t = 0 to steps - 1 do
    let g = Waypoint.graph model in
    (match !prev_graph with
    | Some p -> link_changes := !link_changes + count_flips p g
    | None -> ());
    prev_graph := Some g;
    if t mod refresh = 0 then begin
      (* one graph-level notification per refresh — the durability hook
         (rspan churn --wal) logs the topology delta since the last
         refresh, shared across strategies *)
      Option.iter (fun f -> f g) wal;
      List.iter (refresh_state ~n ~incremental g) states
    end;
    (* shared random pairs for a paired comparison *)
    let d0 = Bfs.dist g 0 in
    ignore d0;
    for _ = 1 to pairs_per_step do
      let s = Rand.int rand n and d = Rand.int rand n in
      if s <> d && Bfs.dist_pair g s d > 0 then begin
        let dg = Bfs.dist_pair g s d in
        List.iter
          (fun st ->
            st.attempted <- st.attempted + 1;
            match route ?fault ~t ~n ~stale_adj:st.stale_adj ~current:g s d with
            | Some hops ->
                st.delivered <- st.delivered + 1;
                st.stretch_sum <- st.stretch_sum +. (float_of_int hops /. float_of_int dg)
            | None -> ())
          states
      end
    done;
    Waypoint.step model
  done;
  List.map
    (fun st ->
      {
        name = st.strategy.name;
        steps;
        pairs_attempted = st.attempted;
        delivered = st.delivered;
        mean_stretch =
          (if st.delivered = 0 then 0.0 else st.stretch_sum /. float_of_int st.delivered);
        mean_advertised =
          (if st.refreshes = 0 then 0.0
           else float_of_int st.advertised_sum /. float_of_int st.refreshes);
        link_changes = !link_changes;
        repair_mismatches = st.repair_mismatches;
      })
    states
