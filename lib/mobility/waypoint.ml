module Rand = Rs_graph.Rand

type node = {
  mutable x : float;
  mutable y : float;
  mutable wx : float;
  mutable wy : float;
  mutable speed : float;
  mutable pausing : int;
}

type t = {
  rand : Rand.t;
  side : float;
  speed_min : float;
  speed_max : float;
  pause : int;
  nodes : node array;
}

let draw_speed t = t.speed_min +. Rand.float t.rand (t.speed_max -. t.speed_min +. 1e-12)

let new_leg t node =
  node.wx <- Rand.float t.rand t.side;
  node.wy <- Rand.float t.rand t.side;
  node.speed <- draw_speed t

let create rand ~n ~side ~speed_min ~speed_max ~pause =
  if speed_min < 0.0 || speed_max < speed_min then
    invalid_arg "Waypoint.create: need 0 <= speed_min <= speed_max";
  if pause < 0 then invalid_arg "Waypoint.create: negative pause";
  if side <= 0.0 then invalid_arg "Waypoint.create: side <= 0";
  let t =
    {
      rand;
      side;
      speed_min;
      speed_max;
      pause;
      nodes =
        Array.init n (fun _ ->
            { x = 0.0; y = 0.0; wx = 0.0; wy = 0.0; speed = 0.0; pausing = 0 });
    }
  in
  Array.iter
    (fun node ->
      node.x <- Rand.float rand side;
      node.y <- Rand.float rand side;
      new_leg t node)
    t.nodes;
  t

let n t = Array.length t.nodes

let positions t = Array.map (fun node -> [| node.x; node.y |]) t.nodes

let step t =
  Array.iter
    (fun node ->
      if node.pausing > 0 then begin
        node.pausing <- node.pausing - 1;
        if node.pausing = 0 then new_leg t node
      end
      else begin
        let dx = node.wx -. node.x and dy = node.wy -. node.y in
        let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
        if dist <= node.speed then begin
          node.x <- node.wx;
          node.y <- node.wy;
          if t.pause > 0 then node.pausing <- t.pause else new_leg t node
        end
        else begin
          node.x <- node.x +. (node.speed *. dx /. dist);
          node.y <- node.y +. (node.speed *. dy /. dist)
        end
      end)
    t.nodes

let graph ?(radius = 1.0) t = Rs_geometry.Unit_ball.udg ~radius (positions t)
