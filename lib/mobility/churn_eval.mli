(** Routing under mobility with periodically refreshed advertisements.

    The practical regime the paper targets: the advertised sub-graph H
    is recomputed every [refresh] steps from the then-current topology
    and is {e stale} in between, while hello-level neighbor knowledge
    stays current (routers always know their own links, the premise of
    remote-spanners). A packet is forwarded greedily over
    [stale H restricted to surviving links] + [current own links];
    vanished links drop routes, so the figure of merit is delivery
    ratio and stretch as functions of staleness — and redundancy
    (2-connecting spanners) should degrade more gracefully than
    minimal ones. Experiment E18 reports exactly that. *)

type strategy = {
  name : string;
  build : Rs_graph.Graph.t -> Rs_graph.Edge_set.t;
      (** recomputed at each refresh from the current topology *)
  spec : Rs_dynamic.Repair.spec option;
      (** when present, [run ~incremental:true] maintains this
          strategy's H with {!Rs_dynamic.Repair} across refreshes
          instead of rebuilding; [build] must agree with the spec (it
          serves as the equivalence reference) *)
}

val strategy :
  ?spec:Rs_dynamic.Repair.spec ->
  string ->
  (Rs_graph.Graph.t -> Rs_graph.Edge_set.t) ->
  strategy
(** [strategy ?spec name build] — [spec] defaults to [None] (always
    rebuild from scratch). *)

type report = {
  name : string;
  steps : int;
  pairs_attempted : int;
  delivered : int;
  mean_stretch : float;  (** over delivered packets *)
  mean_advertised : float;  (** average |E(H)| across refreshes *)
  link_changes : int;  (** total UDG edge flips over the run *)
  repair_mismatches : int;
      (** refreshes where the incrementally repaired H differed from
          the from-scratch build (0 unless [~incremental:true] and the
          strategy carries a spec; expected 0 then too — the
          constructions are deterministic, so incremental repair at the
          correct locality radius reproduces the rebuild exactly) *)
}

val run :
  ?faults:Rs_distributed.Fault.plan ->
  ?incremental:bool ->
  ?wal:(Rs_graph.Graph.t -> unit) ->
  Rs_graph.Rand.t ->
  model:Waypoint.t ->
  strategies:strategy list ->
  steps:int ->
  refresh:int ->
  pairs_per_step:int ->
  report list
(** Drive the mobility model [steps] steps. Every [refresh] steps each
    strategy rebuilds its H from the current graph. Every step,
    [pairs_per_step] random connected source/destination pairs are
    routed per strategy over the stale advertisement (pairs are drawn
    once per step and shared across strategies — the comparison is
    paired). Greedy forwarding runs on H' = (H ∩ current edges) plus
    the forwarding node's current links; a routing loop or dead end is
    a loss.

    [?incremental] (default false) switches strategies that carry a
    repair spec to incremental maintenance: at each refresh the
    topology delta since the previous refresh is computed
    ({!Rs_dynamic.Delta.diff}) and healed into the maintained spanner
    ({!Rs_dynamic.Repair.apply}) instead of rebuilding H from scratch.
    Every refresh is {e gated}: the healed edge set is compared
    against the from-scratch build; a divergence increments
    [repair_mismatches] and the from-scratch H is advertised, so
    routing figures are never silently corrupted by a bad repair.
    Strategies without a spec are unaffected.

    [?wal] is the durability hook: it is called once per refresh step
    with the then-current topology, {e before} the strategies refresh
    their advertisements — [rspan churn --wal] points it at an
    [Rs_store] store so the refresh-boundary topology deltas land in a
    write-ahead log and a crashed evaluator's spanner state is
    recoverable. Strategies and routing are unaffected.

    [?faults] composes the E18 staleness study with link-level
    adversity: each forwarded hop at step [t] can be lost with the
    plan's [drop] probability (the packet is then a loss), crashed
    nodes are detected at hello level and routed around (a crashed
    source or destination makes the pair an automatic loss), and
    flapped links carry nothing. The plan's stream is separate from
    [rand], so [?faults:None] leaves reports byte-identical to the
    fault-free evaluator and a fixed plan seed makes faulty runs fully
    reproducible. Delay/duplication components are ignored here —
    packet forwarding is a per-step decision, not a queued message. *)
